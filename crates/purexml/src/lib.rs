//! A pureXML™-style navigational baseline.
//!
//! DB2's built-in XQuery processor (Section IV-B) stores XML documents as
//! native node trees — either one monolithic instance or many small
//! segments per row — and evaluates queries by combining
//!
//! * `XISCAN`: a lookup in an `XMLPATTERN` value index (typed values of the
//!   nodes selected by a fixed downward path), yielding the row ids of
//!   documents containing matching nodes, and
//! * `XSCAN`: a TurboXPath-style traversal of the fetched documents'
//!   node trees.
//!
//! This crate reproduces that execution model over the same infoset
//! encoding used elsewhere: value indexes are built per (path, value) over
//! segment roots; when a query carries an index-eligible value comparison,
//! only the matching segments are traversed, otherwise the traversal starts
//! at the document root and visits the whole instance.
//!
//! Both loops run as pull-based operators on the shared
//! [`xqjg_store::Operator`] substrate: [`XiScanOp`] emits candidate
//! segment ids batch-at-a-time and [`XScanOp`] pulls them and traverses
//! the corresponding node trees — the same `open` / `next_batch` / `close`
//! protocol (and the same [`OpStats`] work accounting) the relational
//! executor and the stacked-plan evaluator use, so Table IX compares three
//! strategies on one runtime.
//!
//! Limitation (shared with the paper's segmented setup): segmented
//! evaluation is segment-local, so queries joining nodes that live in
//! *different* segments (Q2's triple value join) must use [`Storage::Whole`]
//! — the Table IX harness reports them as DNF, as the paper does.

use std::collections::HashMap;
use xqjg_store::{
    drain, effective_morsel_size, execute_morsels, merge_worker_stats, new_stats_sink,
    partition_morsels, Batch, BoxedOperator, ExecConfig, OpStats, Operator, StatsSink, VecSource,
};
use xqjg_xml::axis::{children_of, step};
use xqjg_xml::{Axis, DocTable, NodeKind, NodeTest, Pre};
use xqjg_xquery::interp::{compare_atoms, Atom};
use xqjg_xquery::{Condition, CoreExpr, GenCmp, Literal, Operand};

/// How the XML instance is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Storage {
    /// One monolithic document per instance ("whole" in Table IX).
    Whole,
    /// Many small segments: the subtrees at the given depth become separate
    /// rows ("segmented" in Table IX).
    Segmented {
        /// Depth (from the document root) at which subtrees are cut into
        /// segments; XMark uses 2 (the children of `open_auctions`,
        /// `people`, …), DBLP uses 1 (individual publications).
        depth: u32,
    },
}

/// An XMLPATTERN-style value index: the string values of all nodes reached
/// by a fixed downward path, mapped to the segments containing them.
#[derive(Debug, Clone)]
pub struct PatternIndex {
    /// The indexed path, as a sequence of element names; a leading `@` marks
    /// an attribute component (only valid in the last position).
    pub path: Vec<String>,
    map: HashMap<String, Vec<usize>>,
}

/// The pureXML-style store: segment roots plus value indexes.
#[derive(Debug)]
pub struct PureXmlStore<'a> {
    doc: &'a DocTable,
    storage: Storage,
    segments: Vec<Pre>,
    indexes: Vec<PatternIndex>,
}

/// One pureXML query evaluation, described declaratively — the mirror of
/// the relational engine's `QueryRequest` builder.  Obtained from
/// [`PureXmlStore::query`]; knobs are opt-in, and [`XmlQueryRequest::run`]
/// returns the result node sequence plus the per-operator counters.
#[derive(Clone, Copy)]
pub struct XmlQueryRequest<'q, 'a> {
    store: &'q PureXmlStore<'a>,
    core: &'q CoreExpr,
    config: Option<&'q ExecConfig>,
}

impl<'q, 'a> XmlQueryRequest<'q, 'a> {
    /// Pin the execution knobs (default: [`ExecConfig::from_env`]).
    pub fn config(mut self, cfg: &'q ExecConfig) -> Self {
        self.config = Some(cfg);
        self
    }

    /// Evaluate through the XISCAN → XSCAN operator pipeline, returning
    /// the result node sequence and the per-operator counters.
    pub fn run(self) -> (Vec<Pre>, Vec<OpStats>) {
        let default_cfg;
        let cfg = match self.config {
            Some(c) => c,
            None => {
                default_cfg = ExecConfig::from_env();
                &default_cfg
            }
        };
        self.store.run_pipeline(self.core, cfg)
    }
}

impl<'a> PureXmlStore<'a> {
    /// Build a store over an encoded instance.
    pub fn new(doc: &'a DocTable, storage: Storage) -> Self {
        let segments = match storage {
            Storage::Whole => doc.document_roots(),
            Storage::Segmented { depth } => {
                let segs: Vec<Pre> = doc
                    .rows()
                    .filter(|r| r.level == depth && r.kind == NodeKind::Element)
                    .map(|r| Pre(r.pre))
                    .collect();
                if segs.is_empty() {
                    doc.document_roots()
                } else {
                    segs
                }
            }
        };
        PureXmlStore {
            doc,
            storage,
            segments,
            indexes: Vec::new(),
        }
    }

    /// Number of segments (rows) the instance was cut into.
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The storage mode.
    pub fn storage(&self) -> Storage {
        self.storage
    }

    /// Create an XMLPATTERN value index on the given path (element names;
    /// a final `@name` component indexes attribute values).
    pub fn create_pattern_index(&mut self, path: &[&str]) {
        let mut map: HashMap<String, Vec<usize>> = HashMap::new();
        for (seg_id, &root) in self.segments.iter().enumerate() {
            for node in nodes_matching_path(self.doc, root, path) {
                let value = self.doc.string_value(node);
                map.entry(value).or_default().push(seg_id);
            }
        }
        for postings in map.values_mut() {
            postings.dedup();
        }
        self.indexes.push(PatternIndex {
            path: path.iter().map(|s| s.to_string()).collect(),
            map,
        });
    }

    /// Evaluate a query.  Returns the result node sequence plus the number
    /// of segments whose trees were traversed (the XSCAN effort).
    pub fn evaluate(&self, core: &CoreExpr) -> (Vec<Pre>, usize) {
        let (items, stats) = self.query(core).run();
        let scanned = stats
            .iter()
            .find(|o| o.name.starts_with("XSCAN"))
            .map(|o| o.rows_in)
            .unwrap_or(0);
        (items, scanned)
    }

    /// Start an [`XmlQueryRequest`] for this store — the mirror of the
    /// relational engine's `QueryRequest` builder and the single execution
    /// entry point of the pureXML side.
    pub fn query<'q>(&'q self, core: &'q CoreExpr) -> XmlQueryRequest<'q, 'a> {
        XmlQueryRequest {
            store: self,
            core,
            config: None,
        }
    }

    /// Evaluate a query through the XISCAN → XSCAN operator pipeline,
    /// returning the result node sequence and the per-operator counters.
    /// Parallelism and batching follow the environment knobs (see
    /// [`ExecConfig::from_env`]).
    #[deprecated(note = "use store.query(core).run()")]
    pub fn evaluate_with_stats(&self, core: &CoreExpr) -> (Vec<Pre>, Vec<OpStats>) {
        self.query(core).run()
    }

    /// [`XmlQueryRequest::run`] with explicit execution knobs.
    #[deprecated(note = "use store.query(core).config(cfg).run()")]
    pub fn evaluate_with_stats_config(
        &self,
        core: &CoreExpr,
        cfg: &ExecConfig,
    ) -> (Vec<Pre>, Vec<OpStats>) {
        self.query(core).config(cfg).run()
    }

    /// The XISCAN → XSCAN pipeline behind [`XmlQueryRequest::run`].
    ///
    /// The XISCAN candidate list is partitioned into morsels on the same
    /// exchange the relational executor uses: each worker runs a private
    /// XISCAN → XSCAN pipeline over one morsel of candidate segments at a
    /// time, and the per-worker counters merge back into the sequential
    /// counters — so Table IX comparisons stay apples-to-apples across
    /// degrees of parallelism.
    fn run_pipeline(&self, core: &CoreExpr, cfg: &ExecConfig) -> (Vec<Pre>, Vec<OpStats>) {
        let threads = cfg.threads.max(1);
        let cap = cfg.batch_capacity.max(1);
        // XISCAN: try to narrow the candidate segments via an eligible
        // value-index lookup.
        let (candidates, name) = match self.eligible_lookup(core) {
            Some(segs) => (segs, "XISCAN(value index)"),
            None => ((0..self.segments.len()).collect(), "XISCAN(all segments)"),
        };
        let morsel_size = effective_morsel_size(candidates.len(), threads, cfg.morsel_size);
        let morsels = partition_morsels(candidates.len(), morsel_size);
        let runs: Vec<(Vec<Pre>, Vec<OpStats>)> = execute_morsels(threads, morsels, |_, m| {
            let sink = new_stats_sink();
            let xiscan: XiScanOp =
                VecSource::new(name, candidates[m.range()].to_vec(), Some(sink.clone()))
                    .with_batch_capacity(cap);
            // XSCAN: traverse the morsel's candidate segments.
            let mut xscan = XScanOp {
                store: self,
                core,
                input: Box::new(xiscan),
                pending: Vec::new(),
                ppos: 0,
                cap,
                stats: OpStats::named("XSCAN"),
                sink: sink.clone(),
            };
            let items = drain(&mut xscan);
            let stats = sink.borrow().clone();
            (items, stats)
        });
        let mut out = Vec::new();
        let mut per_morsel: Vec<Vec<OpStats>> = Vec::with_capacity(runs.len());
        for (items, ops) in runs {
            out.extend(items);
            per_morsel.push(ops);
        }
        let stats = merge_worker_stats(&per_morsel, cap);
        out.sort();
        out.dedup();
        (out, stats)
    }

    /// Find a value comparison in the query that an index is eligible for
    /// and return the matching segment ids.
    fn eligible_lookup(&self, core: &CoreExpr) -> Option<Vec<usize>> {
        let mut found: Option<Vec<usize>> = None;
        visit_conditions(core, &mut |cond| {
            if found.is_some() {
                return;
            }
            if let Condition::Compare { lhs, op, rhs } = cond {
                let (path_op, lit, op) = match (lhs, rhs) {
                    (Operand::Nodes(e), Operand::Literal(l)) => (e, l, *op),
                    (Operand::Literal(l), Operand::Nodes(e)) => (e, l, flip(*op)),
                    _ => return,
                };
                let Some(names) = trailing_names(path_op) else {
                    return;
                };
                for index in &self.indexes {
                    if !path_suffix_matches(&index.path, &names) {
                        continue;
                    }
                    let lit_atom = literal_atom(lit);
                    let mut segs: Vec<usize> = Vec::new();
                    for (value, postings) in &index.map {
                        let atom = Atom {
                            string: value.clone(),
                            decimal: xqjg_xml::encoding::parse_decimal(value),
                            numeric_literal: false,
                        };
                        if compare_atoms(&atom, op, &lit_atom) {
                            segs.extend(postings.iter().copied());
                        }
                    }
                    segs.sort_unstable();
                    segs.dedup();
                    found = Some(segs);
                    return;
                }
            }
        });
        found
    }
}

/// XISCAN as an operator: emits the ids of candidate segments — either the
/// postings of an eligible `XMLPATTERN` value-index lookup or every segment
/// of the instance.  The candidate list is precomputed, so the store's
/// generic [`VecSource`] is the exact operator shape.
pub type XiScanOp = VecSource<usize>;

/// XSCAN as an operator: pulls candidate segment ids from its input and
/// performs the TurboXPath-style traversal of each segment's node tree,
/// emitting matching nodes.  `rows_in` counts the segments traversed (the
/// XSCAN effort reported in Table IX).
pub struct XScanOp<'a> {
    store: &'a PureXmlStore<'a>,
    core: &'a CoreExpr,
    input: BoxedOperator<'a, usize>,
    /// Matches of already-traversed segments, drained by cursor — batches
    /// are filled from this buffer with one bulk slice copy instead of a
    /// per-node queue pop.
    pending: Vec<Pre>,
    ppos: usize,
    cap: usize,
    stats: OpStats,
    sink: StatsSink,
}

impl XScanOp<'_> {
    /// Traverse one segment, buffering its matches.
    fn traverse(&mut self, seg_id: usize) {
        self.stats.rows_in += 1;
        let root = self.store.segments[seg_id];
        let mut env = HashMap::new();
        if let Ok(items) = eval_over_segment(self.core, self.store.doc, root, &mut env) {
            self.pending.extend(items);
        }
    }
}

impl Operator for XScanOp<'_> {
    type Item = Pre;

    fn open(&mut self) {
        self.input.open();
        self.pending.clear();
        self.ppos = 0;
    }

    fn next_batch(&mut self) -> Option<Batch<Pre>> {
        let mut out: Batch<Pre> = Batch::with_capacity(self.cap);
        loop {
            if self.ppos < self.pending.len() {
                self.ppos += out.fill_from_slice(&self.pending[self.ppos..]);
                if out.is_full() {
                    break;
                }
            }
            self.pending.clear();
            self.ppos = 0;
            match self.input.next_batch() {
                Some(batch) => {
                    for seg_id in batch {
                        self.traverse(seg_id);
                    }
                }
                None => break,
            }
        }
        if out.is_empty() {
            return None;
        }
        self.stats.rows_out += out.len();
        self.stats.batches += 1;
        Some(out)
    }

    fn close(&mut self) {
        self.input.close();
        self.sink.borrow_mut().push(self.stats.clone());
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

fn flip(op: GenCmp) -> GenCmp {
    match op {
        GenCmp::Lt => GenCmp::Gt,
        GenCmp::Le => GenCmp::Ge,
        GenCmp::Gt => GenCmp::Lt,
        GenCmp::Ge => GenCmp::Le,
        other => other,
    }
}

fn literal_atom(lit: &Literal) -> Atom {
    match lit {
        Literal::String(s) => Atom {
            string: s.clone(),
            decimal: xqjg_xml::encoding::parse_decimal(s),
            numeric_literal: false,
        },
        Literal::Integer(i) => Atom {
            string: i.to_string(),
            decimal: Some(*i as f64),
            numeric_literal: true,
        },
        Literal::Decimal(d) => Atom {
            string: d.to_string(),
            decimal: Some(*d),
            numeric_literal: true,
        },
    }
}

/// Walk every condition of a Core expression.
fn visit_conditions(core: &CoreExpr, f: &mut impl FnMut(&Condition)) {
    match core {
        CoreExpr::For { seq, body, .. } => {
            visit_conditions(seq, f);
            visit_conditions(body, f);
        }
        CoreExpr::Let { value, body, .. } => {
            visit_conditions(value, f);
            visit_conditions(body, f);
        }
        CoreExpr::Ddo(e) => visit_conditions(e, f),
        CoreExpr::Step { input, .. } => visit_conditions(input, f),
        CoreExpr::If { cond, then } => {
            f(cond);
            if let Condition::Exists(e) = cond.as_ref() {
                visit_conditions(e, f);
            }
            visit_conditions(then, f);
        }
        CoreExpr::Seq(items) => {
            for i in items {
                visit_conditions(i, f);
            }
        }
        CoreExpr::Var(_) | CoreExpr::Doc(_) | CoreExpr::Empty => {}
    }
}

/// The trailing child/attribute name-test components of a path expression
/// (ignoring its context), e.g. `$x/itemref/@item` → `["itemref", "@item"]`.
fn trailing_names(e: &CoreExpr) -> Option<Vec<String>> {
    match e {
        CoreExpr::Ddo(inner) => trailing_names(inner),
        CoreExpr::Step { input, axis, test } => {
            let name = match test {
                NodeTest::Name(Some(n)) => n.clone(),
                _ => return None,
            };
            let component = match axis {
                Axis::Child | Axis::Descendant => name,
                Axis::Attribute => format!("@{name}"),
                _ => return None,
            };
            let mut prefix = match input.as_ref() {
                CoreExpr::Var(_) | CoreExpr::Doc(_) => Vec::new(),
                other => trailing_names(other)?,
            };
            prefix.push(component);
            Some(prefix)
        }
        _ => None,
    }
}

/// Does the query path match the indexed path as a suffix?
fn path_suffix_matches(index_path: &[String], query_path: &[String]) -> bool {
    if query_path.is_empty() || query_path.len() > index_path.len() {
        return false;
    }
    index_path[index_path.len() - query_path.len()..] == *query_path
}

/// All nodes below `root` (inclusive) reached by the downward path.
fn nodes_matching_path(doc: &DocTable, root: Pre, path: &[&str]) -> Vec<Pre> {
    // The first component may match the segment root itself or any
    // descendant (pattern paths are anchored at the document root but the
    // segment is a subtree).
    let mut contexts = vec![root];
    for (i, component) in path.iter().enumerate() {
        let (axis, test) = if let Some(attr) = component.strip_prefix('@') {
            (Axis::Attribute, NodeTest::name(attr))
        } else if i == 0 {
            (
                Axis::DescendantOrSelf,
                NodeTest::Element(Some(component.to_string())),
            )
        } else {
            (Axis::Child, NodeTest::name(*component))
        };
        contexts = step(doc, &contexts, axis, &test);
        if contexts.is_empty() {
            break;
        }
    }
    contexts
}

/// Evaluate a Core expression with all document / absolute references
/// rebound to the given segment root (the XSCAN traversal).
fn eval_over_segment(
    core: &CoreExpr,
    doc: &DocTable,
    segment_root: Pre,
    env: &mut HashMap<String, Vec<Pre>>,
) -> Result<Vec<Pre>, xqjg_xquery::InterpError> {
    // A segment behaves like a small document whose root still sits on the
    // original root path: steps naming one of the segment's ancestors are
    // satisfied by that spine, the first step reaching into the segment is
    // relaxed to descendant-or-self.
    let ancestors = ancestor_names(doc, segment_root);
    let rebound = rebind_doc(core, &ancestors).0;
    let mut scoped = env.clone();
    scoped.insert("#segment".to_string(), vec![segment_root]);
    xqjg_xquery::interp::evaluate_with_env(&rebound, doc, &mut scoped)
}

/// Names of the ancestors of a segment root (the retained "spine").
fn ancestor_names(doc: &DocTable, root: Pre) -> std::collections::HashSet<String> {
    let mut out = std::collections::HashSet::new();
    let mut cur = root;
    while let Some(parent) = xqjg_xml::axis::parent_of(doc, cur) {
        if let Some(name) = &doc.row(parent).name {
            out.insert(name.clone());
        }
        cur = parent;
    }
    out
}

/// Replace `doc(...)` leaves by a reference to the segment variable, drop
/// leading child steps that name an ancestor of the segment root (they are
/// satisfied by the spine), and relax the first step that reaches into the
/// segment to descendant-or-self.  Returns the rewritten expression plus a
/// flag telling the caller whether the expression is still "leading" (its
/// value is the rebound document context itself).
fn rebind_doc(core: &CoreExpr, ancestors: &std::collections::HashSet<String>) -> (CoreExpr, bool) {
    match core {
        CoreExpr::Doc(_) => (CoreExpr::Var("#segment".to_string()), true),
        CoreExpr::For { var, seq, body } => (
            CoreExpr::For {
                var: var.clone(),
                seq: Box::new(rebind_doc(seq, ancestors).0),
                body: Box::new(rebind_doc(body, ancestors).0),
            },
            false,
        ),
        CoreExpr::Let { var, value, body } => (
            CoreExpr::Let {
                var: var.clone(),
                value: Box::new(rebind_doc(value, ancestors).0),
                body: Box::new(rebind_doc(body, ancestors).0),
            },
            false,
        ),
        CoreExpr::Ddo(e) => {
            let (inner, leading) = rebind_doc(e, ancestors);
            (CoreExpr::Ddo(Box::new(inner)), leading)
        }
        CoreExpr::Step { input, axis, test } => {
            let (new_input, leading) = rebind_doc(input, ancestors);
            if leading {
                // Drop steps naming an ancestor on the spine.
                if *axis == Axis::Child {
                    if let NodeTest::Name(Some(n)) = test {
                        if ancestors.contains(n) {
                            return (new_input, true);
                        }
                    }
                }
                // Relax the first step into the segment.
                let new_axis = match axis {
                    Axis::Child | Axis::Descendant => Axis::DescendantOrSelf,
                    other => *other,
                };
                (
                    CoreExpr::Step {
                        input: Box::new(new_input),
                        axis: new_axis,
                        test: test.clone(),
                    },
                    false,
                )
            } else {
                (
                    CoreExpr::Step {
                        input: Box::new(new_input),
                        axis: *axis,
                        test: test.clone(),
                    },
                    false,
                )
            }
        }
        CoreExpr::If { cond, then } => (
            CoreExpr::If {
                cond: Box::new(rebind_condition(cond, ancestors)),
                then: Box::new(rebind_doc(then, ancestors).0),
            },
            false,
        ),
        CoreExpr::Seq(items) => (
            CoreExpr::Seq(items.iter().map(|i| rebind_doc(i, ancestors).0).collect()),
            false,
        ),
        CoreExpr::Var(v) => (CoreExpr::Var(v.clone()), false),
        CoreExpr::Empty => (CoreExpr::Empty, false),
    }
}

fn rebind_condition(cond: &Condition, ancestors: &std::collections::HashSet<String>) -> Condition {
    match cond {
        Condition::Exists(e) => Condition::Exists(rebind_doc(e, ancestors).0),
        Condition::Compare { lhs, op, rhs } => Condition::Compare {
            lhs: rebind_operand(lhs, ancestors),
            op: *op,
            rhs: rebind_operand(rhs, ancestors),
        },
    }
}

fn rebind_operand(op: &Operand, ancestors: &std::collections::HashSet<String>) -> Operand {
    match op {
        Operand::Nodes(e) => Operand::Nodes(rebind_doc(e, ancestors).0),
        Operand::Literal(l) => Operand::Literal(l.clone()),
    }
}

/// Count the nodes of every segment — a sanity metric mirroring the paper's
/// segment-size discussion.
pub fn average_segment_size(doc: &DocTable, storage: Storage) -> f64 {
    let store = PureXmlStore::new(doc, storage);
    if store.segments.is_empty() {
        return 0.0;
    }
    let total: usize = store
        .segments
        .iter()
        .map(|&p| doc.row(p).size as usize + 1)
        .sum();
    total as f64 / store.segments.len() as f64
}

/// Children of a segment root (exposed for tests and the harness).
pub fn segment_children(doc: &DocTable, root: Pre) -> Vec<Pre> {
    children_of(doc, root)
}

#[cfg(test)]
// The unit tests deliberately keep exercising the deprecated entry points:
// they are the regression suite proving the shims stay byte-identical to
// the `XmlQueryRequest` path they forward to.
#[allow(deprecated)]
mod tests {
    use super::*;
    use xqjg_xquery::parse_and_normalize;

    fn instance() -> DocTable {
        let xml = r#"<site>
            <people>
              <person id="person0"><name>Alice</name></person>
              <person id="person1"><name>Bob</name></person>
            </people>
            <closed_auctions>
              <closed_auction><price>600</price></closed_auction>
              <closed_auction><price>100</price></closed_auction>
            </closed_auctions>
          </site>"#;
        DocTable::from_document("auction.xml", &xqjg_xml::parse_document(xml).unwrap())
    }

    #[test]
    fn whole_vs_segmented_segment_counts() {
        let doc = instance();
        let whole = PureXmlStore::new(&doc, Storage::Whole);
        assert_eq!(whole.segment_count(), 1);
        let seg = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        assert_eq!(seg.segment_count(), 4);
        assert!(average_segment_size(&doc, Storage::Segmented { depth: 3 }) < 10.0);
    }

    #[test]
    fn evaluation_matches_reference_interpreter() {
        let doc = instance();
        let core =
            parse_and_normalize("//closed_auction[price > 500]", Some("auction.xml")).unwrap();
        let expected = xqjg_xquery::interpret(&core, &doc).unwrap();
        for storage in [Storage::Whole, Storage::Segmented { depth: 3 }] {
            let store = PureXmlStore::new(&doc, storage);
            let (got, _) = store.evaluate(&core);
            assert_eq!(got, expected, "{storage:?}");
        }
    }

    #[test]
    fn pattern_index_narrows_the_scan() {
        let doc = instance();
        let mut store = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        store.create_pattern_index(&["person", "@id"]);
        let core = parse_and_normalize(
            r#"/site/people/person[@id = "person0"]/name/text()"#,
            Some("auction.xml"),
        )
        .unwrap();
        let (items, scanned) = store.evaluate(&core);
        assert_eq!(items.len(), 1);
        assert_eq!(scanned, 1, "only the matching segment is traversed");
        // Without the index every segment is traversed.
        let bare = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        let (items2, scanned2) = bare.evaluate(&core);
        assert_eq!(items2, items);
        assert_eq!(scanned2, 4);
    }

    #[test]
    fn range_lookup_via_value_index() {
        let doc = instance();
        let mut store = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        store.create_pattern_index(&["closed_auction", "price"]);
        let core =
            parse_and_normalize("//closed_auction[price > 500]", Some("auction.xml")).unwrap();
        let (items, scanned) = store.evaluate(&core);
        assert_eq!(items.len(), 1);
        assert_eq!(scanned, 1);
    }

    #[test]
    fn operator_pipeline_reports_xiscan_and_xscan_stats() {
        let doc = instance();
        let mut store = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        store.create_pattern_index(&["closed_auction", "price"]);
        let core =
            parse_and_normalize("//closed_auction[price > 500]", Some("auction.xml")).unwrap();
        let (items, stats) = store.evaluate_with_stats(&core);
        assert_eq!(items.len(), 1);
        assert_eq!(stats.len(), 2, "XISCAN and XSCAN both report");
        let xiscan = &stats[0];
        let xscan = &stats[1];
        assert!(xiscan.name.starts_with("XISCAN(value index)"));
        assert_eq!(xiscan.rows_out, 1, "index narrows to one segment");
        assert_eq!(xscan.rows_in, 1, "one segment traversed");
        assert_eq!(xscan.rows_out, 1);
        assert!(xiscan.batches > 0 && xscan.batches > 0);
        // Without an index the XISCAN enumerates all segments.
        let bare = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        let (_, bare_stats) = bare.evaluate_with_stats(&core);
        assert!(bare_stats[0].name.starts_with("XISCAN(all segments)"));
        assert_eq!(bare_stats[0].rows_out, 4);
    }

    #[test]
    fn parallel_evaluation_is_identical_to_sequential() {
        let doc = instance();
        let mut store = PureXmlStore::new(&doc, Storage::Segmented { depth: 3 });
        store.create_pattern_index(&["closed_auction", "price"]);
        for query in [
            "//closed_auction[price > 500]",
            "/site/people/person/name/text()",
        ] {
            let core = parse_and_normalize(query, Some("auction.xml")).unwrap();
            let reference = store.evaluate_with_stats_config(&core, &ExecConfig::sequential());
            for threads in [2, 4] {
                // Morsel size 1 forces one pipeline per candidate segment.
                let cfg = ExecConfig::sequential()
                    .with_threads(threads)
                    .with_morsel_size(1);
                let got = store.evaluate_with_stats_config(&core, &cfg);
                assert_eq!(got.0, reference.0, "{query} items at DOP {threads}");
                assert_eq!(got.1, reference.1, "{query} stats at DOP {threads}");
            }
        }
    }

    #[test]
    fn path_matching_helpers() {
        assert!(path_suffix_matches(
            &["person".into(), "@id".into()],
            &["@id".into()]
        ));
        assert!(!path_suffix_matches(
            &["person".into(), "@id".into()],
            &["name".into()]
        ));
        let doc = instance();
        let persons = nodes_matching_path(&doc, Pre(0), &["person", "@id"]);
        assert_eq!(persons.len(), 2);
    }
}
