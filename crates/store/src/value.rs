//! The value domain of the relational substrate.
//!
//! The tabular XML encoding and all intermediate results only need a small
//! set of scalar types: 64-bit integers (`pre`, `size`, `level`, surrogate
//! ids), decimals (`data` column), strings (`name`, `value`), booleans and
//! SQL NULL.  Values carry a total order (used by B-trees, sorting and the
//! `ORDER BY` plan tail) in which the numeric types compare numerically with
//! each other, NULL sorts first and strings sort last.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL / absent XML property.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Decimal (xs:decimal image of the `data` column).
    Dec(f64),
    /// String.
    Str(String),
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Is this the NULL value?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Dec(d) => Some(*d),
            _ => None,
        }
    }

    /// Integer view of the value, if it is an integer (or an integral
    /// decimal).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Dec(d) if d.fract() == 0.0 => Some(*d as i64),
            _ => None,
        }
    }

    /// String view of the value, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Rank of the value's type in the total order (`Null < Bool < numeric <
    /// Str`).
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Dec(_) => 2,
            Value::Str(_) => 3,
        }
    }

    /// SQL-style three-valued comparison used by predicate evaluation:
    /// returns `None` when either side is NULL (unknown truth value).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.cmp(other))
    }

    /// Numeric addition with Int/Dec promotion; NULL-propagating, and NULL
    /// for non-numeric operands.  This is the single `+` semantics shared
    /// by the SQL executor's scalar expressions and the algebra evaluator.
    pub fn numeric_add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Int(x), Value::Int(y)) => Value::Int(x + y),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(x), Some(y)) => Value::Dec(x + y),
                _ => Value::Null,
            },
        }
    }
}

impl std::ops::Add for &Value {
    type Output = Value;

    fn add(self, rhs: &Value) -> Value {
        self.numeric_add(rhs)
    }
}

/// Hash a composite key without materializing an owned key vector — the
/// hash-join hot path hashes borrowed `&Value` slices on both the build and
/// the probe side and verifies candidate matches by value comparison.
pub fn hash_values<'a>(values: impl IntoIterator<Item = &'a Value>) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    for v in values {
        v.hash(&mut hasher);
    }
    hasher.finish()
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Canonical total order over `f64`: the usual numeric order, `-0.0` equal
/// to `0.0`, and every NaN equal to every other NaN and *greater* than any
/// non-NaN number.  This is the order [`Value::cmp`] gives the numeric
/// types — `partial_cmp(..).unwrap_or(Equal)` would make NaN compare equal
/// to everything, which is not transitive and corrupts sort-key total
/// order — and the typed sort kernels must agree with it exactly.
#[inline]
pub fn cmp_f64_total(a: f64, b: f64) -> Ordering {
    match a.partial_cmp(&b) {
        Some(ord) => ord,
        None => match (a.is_nan(), b.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => unreachable!("partial_cmp is total on non-NaN"),
        },
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Int(_) | Dec(_), Int(_) | Dec(_)) => {
                let a = self.as_f64().unwrap();
                let b = other.as_f64().unwrap();
                cmp_f64_total(a, b)
            }
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Dec must hash identically when they are numerically
            // equal (Eq treats them as equal).
            Value::Int(_) | Value::Dec(_) => {
                2u8.hash(state);
                let f = self.as_f64().unwrap();
                // Normalize -0.0 to 0.0 and every NaN payload to the one
                // canonical NaN so values that compare equal (under
                // [`cmp_f64_total`]) hash equally.
                let f = if f == 0.0 {
                    0.0
                } else if f.is_nan() {
                    f64::NAN
                } else {
                    f
                };
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Dec(d) => write!(f, "{d}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Dec(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn numeric_cross_type_equality_and_order() {
        assert_eq!(Value::Int(5), Value::Dec(5.0));
        assert!(Value::Int(5) < Value::Dec(5.5));
        assert!(Value::Dec(4.9) < Value::Int(5));
        assert_eq!(hash_of(&Value::Int(5)), hash_of(&Value::Dec(5.0)));
    }

    #[test]
    fn type_order_is_total() {
        let mut vals = [
            Value::str("a"),
            Value::Int(1),
            Value::Null,
            Value::Bool(true),
            Value::Dec(0.5),
        ];
        vals.sort();
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[4], Value::str("a"));
    }

    #[test]
    fn sql_cmp_propagates_null() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(1)), Some(Ordering::Equal));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3u32), Value::Int(3));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(2i64)), Value::Int(2));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Dec(7.5).as_i64(), None);
        assert_eq!(Value::Dec(7.0).as_i64(), Some(7));
        assert_eq!(Value::str("s").as_str(), Some("s"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("s").as_f64(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::str("x").to_string(), "'x'");
    }

    #[test]
    fn nan_has_a_canonical_total_order() {
        // NaN is a legal xs:decimal image in intermediate arithmetic; the
        // sort tail needs `cmp` to stay a *total* order in its presence.
        let nan = Value::Dec(f64::NAN);
        // All NaNs are equal to each other — whatever their payload bits —
        // and greater than every other number, but still below strings.
        let other_nan = Value::Dec(f64::from_bits(f64::NAN.to_bits() ^ 1));
        assert_eq!(nan.cmp(&other_nan), Ordering::Equal);
        assert_eq!(nan, other_nan);
        assert_eq!(hash_of(&nan), hash_of(&other_nan));
        assert!(nan > Value::Dec(f64::INFINITY));
        assert!(nan > Value::Int(i64::MAX));
        assert!(nan < Value::str(""));
        assert!(Value::Dec(f64::NEG_INFINITY) < nan);
        // Transitivity check that the old `unwrap_or(Equal)` failed:
        // 1 < NaN and NaN > 2, never 1 == NaN == 2.
        assert_ne!(Value::Int(1), nan);
        assert_ne!(nan, Value::Int(2));
        let mut vals = [nan.clone(), Value::Int(3), Value::Dec(0.5), nan];
        vals.sort();
        assert_eq!(vals[0], Value::Dec(0.5));
        assert_eq!(vals[1], Value::Int(3));
        assert!(matches!(vals[2], Value::Dec(d) if d.is_nan()));
    }

    #[test]
    fn cmp_f64_total_agrees_with_value_cmp() {
        let samples = [
            f64::NEG_INFINITY,
            -1.5,
            -0.0,
            0.0,
            2.0,
            f64::INFINITY,
            f64::NAN,
        ];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(
                    cmp_f64_total(a, b),
                    Value::Dec(a).cmp(&Value::Dec(b)),
                    "cmp_f64_total({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(hash_of(&Value::Dec(-0.0)), hash_of(&Value::Dec(0.0)));
        assert_eq!(Value::Dec(-0.0), Value::Int(0));
    }

    #[test]
    fn numeric_add_promotes_and_propagates_null() {
        assert_eq!(Value::Int(1).numeric_add(&Value::Int(2)), Value::Int(3));
        assert_eq!(&Value::Int(1) + &Value::Dec(0.5), Value::Dec(1.5));
        assert_eq!(&Value::Null + &Value::Int(1), Value::Null);
        assert_eq!(&Value::str("x") + &Value::Int(1), Value::Null);
        assert_eq!(&Value::Bool(true) + &Value::Int(1), Value::Null);
    }

    #[test]
    fn hash_values_agrees_with_componentwise_equality() {
        let a = [Value::Int(5), Value::str("k")];
        let b = [Value::Dec(5.0), Value::str("k")];
        // Int(5) == Dec(5.0), so the composite hashes must agree too.
        assert_eq!(hash_values(a.iter()), hash_values(b.iter()));
        let c = [Value::Int(6), Value::str("k")];
        assert_ne!(hash_values(a.iter()), hash_values(c.iter()));
    }
}
