//! Morsel-driven parallel execution layer.
//!
//! Following the HyPer design, parallelism enters the substrate at the
//! *leaf*: a scan's row-id domain (the table's rid range for `TBSCAN`, the
//! pre-fetched posting list for `IXSCAN`, the candidate segment list for
//! `XISCAN`) is split into fixed-size [`Morsel`]s, and a crew of
//! `std::thread::scope` workers pulls morsels from a shared [`MorselQueue`]
//! until it runs dry.  Each worker runs a private copy of the pipeline
//! fragment above the leaf — joins probe shared read-only build tables and
//! B-trees — and buffers its output per morsel, so the coordinator can
//! reassemble results *in morsel order*.  That ordering guarantee is what
//! makes parallel execution observationally identical to DOP = 1: the
//! concatenated rows arrive in exactly the sequential scan order, and the
//! per-worker [`crate::OpStats`] merge
//! ([`crate::merge_worker_stats`]) restores the sequential counters.
//!
//! Nothing here spawns unscoped threads or takes new dependencies: workers
//! borrow the plan, catalog and build tables for the duration of one
//! [`execute_morsels`] call.

use std::ops::Range;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of row ids per morsel.  Small enough that a skewed
/// pipeline (one morsel expanding into many join matches) still load
/// balances, large enough that per-morsel pipeline setup is noise.
pub const DEFAULT_MORSEL_SIZE: usize = 2048;

/// A contiguous slice `[start, end)` of a leaf scan's row-id domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsel {
    /// First domain position covered (inclusive).
    pub start: usize,
    /// One past the last domain position covered.
    pub end: usize,
}

impl Morsel {
    /// Number of domain positions the morsel covers.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Does the morsel cover nothing?
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// The covered positions as a range.
    pub fn range(&self) -> Range<usize> {
        self.start..self.end
    }
}

/// Split a domain of `domain` positions into morsels of at most
/// `morsel_size` positions.  Every position is covered by exactly one
/// morsel and morsels are contiguous and ordered.  An empty domain yields
/// one empty morsel so that exactly one pipeline instance still runs —
/// operators must report their (zeroed) counters even for empty inputs.
pub fn partition_morsels(domain: usize, morsel_size: usize) -> Vec<Morsel> {
    let size = morsel_size.max(1);
    if domain == 0 {
        return vec![Morsel { start: 0, end: 0 }];
    }
    (0..domain)
        .step_by(size)
        .map(|start| Morsel {
            start,
            end: (start + size).min(domain),
        })
        .collect()
}

/// Smallest morsel the automatic shrink will produce.  A domain below
/// `threads × 4 × MIN_MORSEL_SIZE` positions is too small for thread
/// spawn/join to pay off, so it stays on the inline single-morsel path.
/// An explicitly configured smaller morsel size (tests forcing merge
/// coverage) still wins.
pub const MIN_MORSEL_SIZE: usize = 64;

/// Shrink the configured morsel size so that a small leaf domain still
/// yields roughly four morsels per worker — without this, a narrow index
/// scan feeding an expensive join pipeline would collapse to a single
/// morsel and serialize the whole query.  The shrink floors at
/// [`MIN_MORSEL_SIZE`] so that micro-scans (a handful of rows) collapse to
/// one morsel and never spawn workers.
pub fn effective_morsel_size(domain: usize, threads: usize, configured: usize) -> usize {
    if threads <= 1 {
        return configured.max(1);
    }
    let target = domain.div_ceil(threads * 4).max(MIN_MORSEL_SIZE);
    target.min(configured.max(1))
}

/// A shared, lock-free dispenser of morsels: workers `take` until empty.
pub struct MorselQueue {
    morsels: Vec<Morsel>,
    next: AtomicUsize,
}

impl MorselQueue {
    /// A queue over the given morsels.
    pub fn new(morsels: Vec<Morsel>) -> Self {
        MorselQueue {
            morsels,
            next: AtomicUsize::new(0),
        }
    }

    /// Total number of morsels (taken or not).
    pub fn len(&self) -> usize {
        self.morsels.len()
    }

    /// Is the queue empty overall?
    pub fn is_empty(&self) -> bool {
        self.morsels.is_empty()
    }

    /// Claim the next morsel, returning its index and extent, or `None`
    /// once every morsel has been handed out.
    pub fn take(&self) -> Option<(usize, Morsel)> {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        self.morsels.get(i).map(|m| (i, *m))
    }
}

/// Run `work` once per morsel on up to `threads` scoped workers, returning
/// the per-morsel results **in morsel order** (the order
/// [`partition_morsels`] produced).  With one thread (or one morsel) the
/// work runs inline on the caller's thread — no spawn, no atomics on the
/// hot path — which keeps the DOP = 1 configuration as cheap as the
/// pre-morsel executor.
pub fn execute_morsels<R, F>(threads: usize, morsels: Vec<Morsel>, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, Morsel) -> R + Sync,
{
    let result: Result<Vec<R>, std::convert::Infallible> =
        try_execute_morsels(threads, morsels, |i, m| Ok(work(i, m)));
    match result {
        Ok(out) => out,
        Err(e) => match e {},
    }
}

/// The fallible morsel crew: run `work` once per morsel on up to `threads`
/// scoped workers; per-morsel results come back **in morsel order**.
///
/// Errors are *first-error-wins with queue drain*: the first `Err` a
/// worker produces flips a shared flag, every still-queued morsel is
/// claimed-and-skipped (no further work runs), all workers exit cleanly
/// and that first error is returned.  This is deliberately distinct from
/// a worker *panic*, which is still resumed on the caller — an `Err` is a
/// reported query failure, a panic is a bug.
pub fn try_execute_morsels<R, E, F>(
    threads: usize,
    morsels: Vec<Morsel>,
    work: F,
) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize, Morsel) -> Result<R, E> + Sync,
{
    if threads <= 1 || morsels.len() <= 1 {
        return morsels
            .into_iter()
            .enumerate()
            .map(|(i, m)| work(i, m))
            .collect();
    }
    let queue = MorselQueue::new(morsels);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let first_err: std::sync::Mutex<Option<E>> = std::sync::Mutex::new(None);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(queue.len());
    slots.resize_with(queue.len(), || None);
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..threads.min(queue.len()))
            .map(|_| {
                scope.spawn(|| {
                    let mut produced = Vec::new();
                    while let Some((i, m)) = queue.take() {
                        if failed.load(Ordering::Relaxed) {
                            continue; // drain the queue without more work
                        }
                        match work(i, m) {
                            Ok(r) => produced.push((i, r)),
                            Err(e) => {
                                failed.store(true, Ordering::Relaxed);
                                first_err
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner())
                                    .get_or_insert(e);
                            }
                        }
                    }
                    produced
                })
            })
            .collect();
        for worker in workers {
            match worker.join() {
                Ok(produced) => {
                    for (i, r) in produced {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });
    if let Some(e) = first_err.into_inner().unwrap_or_else(|p| p.into_inner()) {
        return Err(e);
    }
    Ok(slots
        .into_iter()
        .map(|r| r.expect("every morsel was claimed and ran"))
        .collect())
}

/// Like [`execute_morsels`], but instead of collecting every per-morsel
/// result before returning, `consume` runs on the *caller's* thread for
/// each result **in morsel order, as soon as it is ready** — morsel `i`'s
/// result is consumed the moment morsels `0..=i` have all finished, while
/// workers keep producing `i+1..`.  This is what lets the coordinator
/// stream worker output straight into a pipeline breaker (the SORT tail's
/// [`crate::ExternalSorter`]) instead of holding every morsel's output
/// alive until the slowest worker finishes.
///
/// Ordering and determinism match [`execute_morsels`] exactly; with one
/// thread (or one morsel) produce and consume simply alternate inline.
/// A panicking worker is resumed on the caller after the crew drains.
pub fn execute_morsels_streaming<R, F, C>(
    threads: usize,
    morsels: Vec<Morsel>,
    work: F,
    mut consume: C,
) where
    R: Send,
    F: Fn(usize, Morsel) -> R + Sync,
    C: FnMut(usize, R),
{
    let result: Result<(), std::convert::Infallible> = try_execute_morsels_streaming(
        threads,
        morsels,
        |i, m| Ok(work(i, m)),
        |i, r| {
            consume(i, r);
            Ok(())
        },
    );
    match result {
        Ok(()) => {}
        Err(e) => match e {},
    }
}

/// The fallible streaming crew: like [`try_execute_morsels`], but each
/// ready result is handed to `consume` on the caller's thread **in morsel
/// order** while workers keep producing (see [`execute_morsels_streaming`]
/// for why).  The first `Err` — from `work` on any worker or from
/// `consume` on the coordinator — wins: the shared failure flag flips,
/// still-queued morsels are claimed-and-skipped, every worker exits
/// cleanly and that error is returned.  Worker panics are still resumed on
/// the caller, distinct from reported errors.
pub fn try_execute_morsels_streaming<R, E, F, C>(
    threads: usize,
    morsels: Vec<Morsel>,
    work: F,
    mut consume: C,
) -> Result<(), E>
where
    R: Send,
    E: Send,
    F: Fn(usize, Morsel) -> Result<R, E> + Sync,
    C: FnMut(usize, R) -> Result<(), E>,
{
    if threads <= 1 || morsels.len() <= 1 {
        for (i, m) in morsels.into_iter().enumerate() {
            consume(i, work(i, m)?)?;
        }
        return Ok(());
    }
    let queue = MorselQueue::new(morsels);
    let total = queue.len();
    // One slot per morsel; workers fill slots under the mutex and signal
    // the coordinator, which drains the ready prefix in order.  The state
    // is (filled slots, accounted count, first worker panic, first error).
    type SlotState<R, E> = (
        Vec<Option<R>>,
        usize,
        Option<Box<dyn std::any::Any + Send>>,
        Option<E>,
    );
    struct Shared<R, E> {
        slots: std::sync::Mutex<SlotState<R, E>>,
        ready: std::sync::Condvar,
        failed: std::sync::atomic::AtomicBool,
    }
    let mut init: Vec<Option<R>> = Vec::with_capacity(total);
    init.resize_with(total, || None);
    let shared = Shared {
        slots: std::sync::Mutex::new((init, 0, None, None)),
        ready: std::sync::Condvar::new(),
        failed: std::sync::atomic::AtomicBool::new(false),
    };
    std::thread::scope(|scope| {
        for _ in 0..threads.min(total) {
            scope.spawn(|| {
                while let Some((i, m)) = queue.take() {
                    if shared.failed.load(Ordering::Relaxed) {
                        // Drain: account for the claimed morsel without
                        // running more work after the first failure.
                        let mut g = shared.slots.lock().expect("streaming slots poisoned");
                        g.1 += 1;
                        drop(g);
                        shared.ready.notify_one();
                        continue;
                    }
                    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(i, m))) {
                        Ok(Ok(r)) => {
                            let mut g = shared.slots.lock().expect("streaming slots poisoned");
                            g.0[i] = Some(r);
                            g.1 += 1;
                            drop(g);
                            shared.ready.notify_one();
                        }
                        Ok(Err(e)) => {
                            shared.failed.store(true, Ordering::Relaxed);
                            let mut g = shared.slots.lock().expect("streaming slots poisoned");
                            g.3.get_or_insert(e);
                            g.1 += 1;
                            drop(g);
                            shared.ready.notify_one();
                        }
                        Err(panic) => {
                            shared.failed.store(true, Ordering::Relaxed);
                            let mut g = shared.slots.lock().expect("streaming slots poisoned");
                            g.2.get_or_insert(panic);
                            g.1 += 1;
                            drop(g);
                            shared.ready.notify_one();
                            return;
                        }
                    }
                }
            });
        }
        let mut next = 0usize;
        while next < total {
            let r = {
                let mut g = shared.slots.lock().expect("streaming slots poisoned");
                loop {
                    if let Some(panic) = g.2.take() {
                        // A worker died: its claimed morsel will never fill
                        // its slot.  Unwind on the caller; remaining workers
                        // drain the queue and exit at scope end.
                        drop(g);
                        std::panic::resume_unwind(panic);
                    }
                    if let Some(e) = g.3.take() {
                        // First reported error wins; workers drain via the
                        // failure flag and the crew exits at scope end.
                        return Err(e);
                    }
                    if let Some(r) = g.0[next].take() {
                        break r;
                    }
                    if g.1 >= total && g.0[next].is_none() {
                        // Every morsel is accounted for but this slot is
                        // empty — only possible after a worker panic or
                        // error, which the branches above surface.
                        drop(g);
                        panic!("streaming morsel {next} never produced a result");
                    }
                    g = shared.ready.wait(g).expect("streaming slots poisoned");
                }
            };
            if let Err(e) = consume(next, r) {
                shared.failed.store(true, Ordering::Relaxed);
                return Err(e);
            }
            next += 1;
        }
        Ok(())
    })
}

/// Runtime execution knobs shared by every evaluation path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecConfig {
    /// Degree of parallelism (number of worker threads), ≥ 1.
    pub threads: usize,
    /// Tuples per [`crate::Batch`] flowing between operators.
    pub batch_capacity: usize,
    /// Row-id domain positions per leaf [`Morsel`] (upper bound; shrunk by
    /// [`effective_morsel_size`] when the domain is small).
    pub morsel_size: usize,
    /// Run the vectorized columnar executor (selection vectors,
    /// column-at-a-time predicates).  `false` selects the row-at-a-time
    /// scalar path, kept as the always-green fallback.
    pub vectorize: bool,
    /// Let scan leaves adapt their scan chunk to the measured predicate
    /// selectivity (see [`crate::BatchSizer`]); `false` pins every chunk to
    /// `batch_capacity`.  Only meaningful on the vectorized path.
    pub adaptive: bool,
    /// Run the typed-column kernels (branch-free compare/hash over flat
    /// `i64`/dictionary images, columnar SORT tail) wherever the operand
    /// columns have typed images.  `false` pins every comparison to the
    /// scalar [`crate::Value`] path — the escape hatch the typed-parity
    /// suite diffs against.  Results, order and counters (modulo the
    /// `kernel_rows` engagement counter itself) are identical either way.
    pub typed_kernels: bool,
    /// Memory budget in bytes for the pipeline breakers (SORT buffers,
    /// hash-join build sides, loaded probe partitions).  `None` never
    /// spills; any limit makes the breakers go external when their
    /// [`crate::MemBudget`] reservation fails (see [`crate::spill`]).
    pub mem_budget: Option<usize>,
    /// Directory spill runs are written to (`None` = the system temp
    /// directory).
    pub spill_dir: Option<PathBuf>,
    /// How many times a *transient* spill-write failure (an I/O error on a
    /// run or partition write) is retried with bounded backoff before it
    /// surfaces as [`crate::ExecError::Io`].  `0` fails on first error.
    pub spill_retries: usize,
    /// Wall-clock deadline for one execution; exceeding it fails the query
    /// with [`crate::ExecError::Timeout`] at the next morsel boundary or
    /// spill run.  `None` = no limit.
    pub query_timeout: Option<std::time::Duration>,
    /// Honor the session/shared hash-join build cache (`XQJG_BUILD_CACHE`;
    /// `false` rebuilds every build side from scratch).
    pub build_cache: bool,
    /// Honor the plan cache in front of the optimizer (`XQJG_PLAN_CACHE`;
    /// `false` re-runs DP join enumeration for every execution).
    pub plan_cache: bool,
    /// Memoize hot `IXSCAN` posting lists ([`crate::PostingsCache`];
    /// `XQJG_POSTINGS_CACHE`; `false` re-walks the B-tree on every probe).
    pub postings_cache: bool,
}

/// The `XQJG_*` execution knobs [`ExecConfig`] understands, in
/// documentation order.  [`ExecConfig::apply_knob`] accepts exactly these
/// names; [`ExecConfig::try_from_env`] reads exactly these variables.
pub const EXEC_KNOBS: &[&str] = &[
    "XQJG_THREADS",
    "XQJG_BATCH_CAPACITY",
    "XQJG_MORSEL_SIZE",
    "XQJG_VECTORIZE",
    "XQJG_ADAPTIVE_BATCH",
    "XQJG_TYPED_KERNELS",
    "XQJG_MEM_BUDGET",
    "XQJG_SPILL_DIR",
    "XQJG_SPILL_RETRIES",
    "XQJG_QUERY_TIMEOUT",
    "XQJG_BUILD_CACHE",
    "XQJG_PLAN_CACHE",
    "XQJG_POSTINGS_CACHE",
];

/// A malformed configuration-knob value: which knob, what was supplied,
/// and what a well-formed value looks like.  This is the typed error every
/// knob-parsing path — environment reads, the serving layer's per-session
/// `SET` command — surfaces instead of silently falling back to a default.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// The knob (environment-variable spelling, e.g. `XQJG_THREADS`).
    pub var: String,
    /// The value that failed to parse.
    pub value: String,
    /// Human-readable description of the accepted syntax.
    pub expected: &'static str,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid value {:?} for {}: expected {}",
            self.value, self.var, self.expected
        )
    }
}

impl std::error::Error for ConfigError {}

impl ConfigError {
    fn new(var: &str, value: &str, expected: &'static str) -> ConfigError {
        ConfigError {
            var: var.to_string(),
            value: value.to_string(),
            expected,
        }
    }
}

/// Strictly parse a positive integer knob; empty means "unset".
pub(crate) fn strict_usize(var: &str, value: &str) -> Result<Option<usize>, ConfigError> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    v.parse::<usize>()
        .ok()
        .filter(|&n| n > 0)
        .map(Some)
        .ok_or_else(|| ConfigError::new(var, value, "a positive integer"))
}

/// Strictly parse a boolean knob; empty means "unset".
pub(crate) fn strict_bool(var: &str, value: &str) -> Result<Option<bool>, ConfigError> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    if v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on") {
        Ok(Some(true))
    } else if v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off") {
        Ok(Some(false))
    } else {
        Err(ConfigError::new(
            var,
            value,
            "a boolean (0/1/true/false/on/off)",
        ))
    }
}

/// Strictly parse a byte-count knob (`k`/`m`/`g` suffixes); empty and `0`
/// mean "unset" (`0` is the documented way to disable a budget).
pub(crate) fn strict_bytes(var: &str, value: &str) -> Result<Option<usize>, ConfigError> {
    let v = value.trim();
    if v.is_empty() || v == "0" {
        return Ok(None);
    }
    parse_bytes(v)
        .map(Some)
        .ok_or_else(|| ConfigError::new(var, value, "a byte count (suffixes k/m/g, e.g. 256k)"))
}

/// Strictly parse a duration knob (`ms`/`s`/`m` suffixes, bare digits are
/// milliseconds); empty and `0` mean "unset".
pub(crate) fn strict_duration(
    var: &str,
    value: &str,
) -> Result<Option<std::time::Duration>, ConfigError> {
    let v = value.trim();
    if v.is_empty() || v == "0" {
        return Ok(None);
    }
    parse_duration(v)
        .map(Some)
        .ok_or_else(|| ConfigError::new(var, value, "a duration (suffixes ms/s/m, e.g. 500ms)"))
}

/// Strictly parse a non-negative integer knob (zero is meaningful); empty
/// means "unset".
pub(crate) fn strict_count(var: &str, value: &str) -> Result<Option<usize>, ConfigError> {
    let v = value.trim();
    if v.is_empty() {
        return Ok(None);
    }
    v.parse::<usize>()
        .ok()
        .map(Some)
        .ok_or_else(|| ConfigError::new(var, value, "a non-negative integer"))
}

impl ExecConfig {
    /// Apply one knob by its environment-variable name.  This is the *only*
    /// parser for `XQJG_*` execution knobs: [`ExecConfig::try_from_env`]
    /// folds it over [`EXEC_KNOBS`], and the serving layer's per-session
    /// `SET` command calls it directly — so environment, server and tests
    /// all agree on syntax and defaults.  An empty value resets the knob to
    /// its built-in default; a malformed value is a typed [`ConfigError`]
    /// (never a silent fallback); an unknown name is an error too.
    pub fn apply_knob(&mut self, var: &str, value: &str) -> Result<(), ConfigError> {
        match var {
            "XQJG_THREADS" => {
                self.threads = strict_usize(var, value)?.unwrap_or_else(default_threads)
            }
            "XQJG_BATCH_CAPACITY" => {
                self.batch_capacity = strict_usize(var, value)?.unwrap_or(crate::BATCH_CAPACITY)
            }
            "XQJG_MORSEL_SIZE" => {
                self.morsel_size = strict_usize(var, value)?.unwrap_or(DEFAULT_MORSEL_SIZE)
            }
            "XQJG_VECTORIZE" => self.vectorize = strict_bool(var, value)?.unwrap_or(true),
            "XQJG_ADAPTIVE_BATCH" => self.adaptive = strict_bool(var, value)?.unwrap_or(true),
            "XQJG_TYPED_KERNELS" => self.typed_kernels = strict_bool(var, value)?.unwrap_or(true),
            "XQJG_MEM_BUDGET" => self.mem_budget = strict_bytes(var, value)?,
            "XQJG_SPILL_DIR" => {
                let v = value.trim();
                self.spill_dir = (!v.is_empty()).then(|| PathBuf::from(v));
            }
            "XQJG_SPILL_RETRIES" => {
                self.spill_retries =
                    strict_count(var, value)?.unwrap_or(crate::spill::DEFAULT_SPILL_RETRIES)
            }
            "XQJG_QUERY_TIMEOUT" => self.query_timeout = strict_duration(var, value)?,
            "XQJG_BUILD_CACHE" => self.build_cache = strict_bool(var, value)?.unwrap_or(true),
            "XQJG_PLAN_CACHE" => self.plan_cache = strict_bool(var, value)?.unwrap_or(true),
            "XQJG_POSTINGS_CACHE" => self.postings_cache = strict_bool(var, value)?.unwrap_or(true),
            _ => {
                return Err(ConfigError::new(
                    var,
                    value,
                    "a known XQJG_* execution knob (see EXEC_KNOBS)",
                ))
            }
        }
        Ok(())
    }

    /// Read every [`EXEC_KNOBS`] variable from the environment, failing on
    /// the first malformed value with a typed [`ConfigError`] naming the
    /// variable, the offending value and the accepted syntax.  Unset and
    /// empty variables take their built-in defaults (see [`ExecConfig::apply_knob`]
    /// for per-knob syntax: positive integers for sizes, booleans for
    /// switches, `k`/`m`/`g` byte suffixes for `XQJG_MEM_BUDGET`,
    /// `ms`/`s`/`m` duration suffixes for `XQJG_QUERY_TIMEOUT`).
    ///
    /// This is the canonical environment builder: long-lived services call
    /// it once at startup so a typo in a deployment manifest is a clean
    /// startup error rather than a silently-default knob.
    pub fn try_from_env() -> Result<Self, ConfigError> {
        let mut cfg = ExecConfig::default();
        for var in EXEC_KNOBS {
            if let Ok(value) = std::env::var(var) {
                cfg.apply_knob(var, &value)?;
            }
        }
        Ok(cfg)
    }

    /// Lenient twin of [`ExecConfig::try_from_env`] for the per-query
    /// default path: a malformed variable falls back to its default after
    /// a one-shot process warning (the seed silently ignored it).  Fresh
    /// code with a place to report errors — services, CLIs — should prefer
    /// [`ExecConfig::try_from_env`].
    pub fn from_env() -> Self {
        let mut cfg = ExecConfig::default();
        for var in EXEC_KNOBS {
            if let Ok(value) = std::env::var(var) {
                if let Err(e) = cfg.apply_knob(var, &value) {
                    static WARN: std::sync::Once = std::sync::Once::new();
                    WARN.call_once(|| eprintln!("xqjg: ignoring malformed knob: {e}"));
                }
            }
        }
        cfg
    }

    /// A sequential configuration with the default batch and morsel sizes
    /// (the reference configuration parity is measured against).  The
    /// `XQJG_VECTORIZE`, `XQJG_TYPED_KERNELS`, `XQJG_MEM_BUDGET` and
    /// `XQJG_SPILL_DIR` switches are still honored so the whole test suite
    /// can be pointed at the scalar fallback path or a tight memory budget
    /// from the environment (the CI matrix does exactly that).
    pub fn sequential() -> Self {
        ExecConfig {
            threads: 1,
            batch_capacity: crate::BATCH_CAPACITY,
            morsel_size: DEFAULT_MORSEL_SIZE,
            adaptive: true,
            ..Self::from_env()
        }
    }

    /// Builder: set the degree of parallelism.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Builder: set the batch capacity.
    pub fn with_batch_capacity(mut self, cap: usize) -> Self {
        self.batch_capacity = cap.max(1);
        self
    }

    /// Builder: set the morsel size.
    pub fn with_morsel_size(mut self, size: usize) -> Self {
        self.morsel_size = size.max(1);
        self
    }

    /// Builder: choose the vectorized or the scalar executor.
    pub fn with_vectorize(mut self, vectorize: bool) -> Self {
        self.vectorize = vectorize;
        self
    }

    /// Builder: enable or pin the adaptive batch-size policy.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.adaptive = adaptive;
        self
    }

    /// Builder: enable or disable the typed-column kernels.
    pub fn with_typed_kernels(mut self, typed: bool) -> Self {
        self.typed_kernels = typed;
        self
    }

    /// Builder: set (or clear) the pipeline-breaker memory budget.
    pub fn with_mem_budget(mut self, bytes: Option<usize>) -> Self {
        self.mem_budget = bytes.filter(|&b| b > 0);
        self
    }

    /// Builder: set the spill directory.
    pub fn with_spill_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.spill_dir = Some(dir.into());
        self
    }

    /// Builder: set the transient spill-write retry limit (`0` fails on
    /// the first error).
    pub fn with_spill_retries(mut self, retries: usize) -> Self {
        self.spill_retries = retries;
        self
    }

    /// Builder: set (or clear) the wall-clock query deadline.
    pub fn with_query_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.query_timeout = timeout.filter(|t| !t.is_zero());
        self
    }

    /// Builder: honor or bypass the shared hash-join build cache.
    pub fn with_build_cache(mut self, on: bool) -> Self {
        self.build_cache = on;
        self
    }

    /// Builder: honor or bypass the plan cache.
    pub fn with_plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }

    /// Builder: honor or bypass `IXSCAN` posting-list memoization.
    pub fn with_postings_cache(mut self, on: bool) -> Self {
        self.postings_cache = on;
        self
    }

    /// Compact fingerprint of the knobs a cached physical plan may depend
    /// on, part of every plan-cache key: two sessions differing in these
    /// knobs never share a cached plan.  Execution-only knobs (threads,
    /// batch/morsel sizes — parity-invariant by construction) are
    /// deliberately excluded so DOP sweeps share the warm plan.
    pub fn cache_fingerprint(&self) -> String {
        format!(
            "v{}t{}m{}",
            self.vectorize as u8,
            self.typed_kernels as u8,
            self.mem_budget.map(|b| b.to_string()).unwrap_or_default()
        )
    }
}

/// The documented defaults (all cores, [`crate::BATCH_CAPACITY`],
/// [`DEFAULT_MORSEL_SIZE`], vectorized + adaptive) — deliberately *without*
/// the environment reads; use [`ExecConfig::from_env`] to honor the
/// `XQJG_*` knobs.
impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            threads: default_threads(),
            batch_capacity: crate::BATCH_CAPACITY,
            morsel_size: DEFAULT_MORSEL_SIZE,
            vectorize: true,
            adaptive: true,
            typed_kernels: true,
            mem_budget: None,
            spill_dir: None,
            spill_retries: crate::spill::DEFAULT_SPILL_RETRIES,
            query_timeout: None,
            build_cache: true,
            plan_cache: true,
            postings_cache: true,
        }
    }
}

/// The machine's available parallelism (the `XQJG_THREADS` default).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Parse a byte count with an optional `k`/`m`/`g` (binary) suffix; zero,
/// empty and malformed inputs mean "unset".
pub fn parse_bytes(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.char_indices().last()? {
        (i, 'k') | (i, 'K') => (&s[..i], 1usize << 10),
        (i, 'm') | (i, 'M') => (&s[..i], 1usize << 20),
        (i, 'g') | (i, 'G') => (&s[..i], 1usize << 30),
        _ => (s, 1),
    };
    digits
        .trim()
        .parse::<usize>()
        .ok()
        .and_then(|n| n.checked_mul(mult))
        .filter(|&n| n > 0)
}

/// Parse a duration with an optional `ms`/`s`/`m` suffix (bare digits are
/// milliseconds, matching the most common timeout granularity); zero,
/// empty and malformed inputs mean "unset", like [`parse_bytes`].
pub fn parse_duration(s: &str) -> Option<std::time::Duration> {
    let s = s.trim();
    let (digits, scale_ms) = if let Some(d) = s.strip_suffix("ms").or_else(|| s.strip_suffix("MS"))
    {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix(['s', 'S']) {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix(['m', 'M']) {
        (d, 60_000)
    } else {
        (s, 1)
    };
    digits
        .trim()
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(scale_ms))
        .filter(|&n| n > 0)
        .map(std::time::Duration::from_millis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ExecError;

    #[test]
    fn partition_covers_domain_exactly_once() {
        let ms = partition_morsels(10, 4);
        assert_eq!(
            ms,
            vec![
                Morsel { start: 0, end: 4 },
                Morsel { start: 4, end: 8 },
                Morsel { start: 8, end: 10 },
            ]
        );
        let exact = partition_morsels(8, 4);
        assert_eq!(exact.len(), 2);
        assert!(exact.iter().all(|m| m.len() == 4));
    }

    #[test]
    fn empty_domain_yields_one_empty_morsel() {
        let ms = partition_morsels(0, 128);
        assert_eq!(ms, vec![Morsel { start: 0, end: 0 }]);
        assert!(ms[0].is_empty());
    }

    #[test]
    fn effective_morsel_size_targets_four_morsels_per_worker() {
        // Sequential: keep the configured size.
        assert_eq!(effective_morsel_size(100, 1, 2048), 2048);
        // Mid-size domain, DOP 4: shrink so all 16 target morsels exist.
        assert_eq!(effective_morsel_size(16_000, 4, 2048), 1000);
        // Large domain: the configured size already yields plenty.
        assert_eq!(effective_morsel_size(1 << 20, 4, 2048), 2048);
        // Micro-scan: the shrink floors at MIN_MORSEL_SIZE, so the whole
        // domain fits one morsel and no workers spawn.
        assert_eq!(effective_morsel_size(9, 4, 2048), MIN_MORSEL_SIZE);
        assert_eq!(effective_morsel_size(0, 4, 2048), MIN_MORSEL_SIZE);
        // An explicitly tiny configured size still wins (merge coverage
        // in tests relies on forcing many small morsels).
        assert_eq!(effective_morsel_size(9, 4, 1), 1);
    }

    #[test]
    fn queue_hands_out_each_morsel_once() {
        let q = MorselQueue::new(partition_morsels(100, 30));
        let mut seen = Vec::new();
        while let Some((i, m)) = q.take() {
            seen.push((i, m));
        }
        assert_eq!(seen.len(), 4);
        assert!(q.take().is_none());
        assert_eq!(
            seen[3].1,
            Morsel {
                start: 90,
                end: 100
            }
        );
    }

    #[test]
    fn execute_morsels_preserves_morsel_order() {
        for threads in [1, 2, 4, 8] {
            let morsels = partition_morsels(1000, 7);
            let out = execute_morsels(threads, morsels.clone(), |i, m| {
                (i, m.range().sum::<usize>())
            });
            assert_eq!(out.len(), morsels.len());
            for (i, (idx, sum)) in out.iter().enumerate() {
                assert_eq!(*idx, i, "slot order matches morsel order at DOP {threads}");
                assert_eq!(*sum, morsels[i].range().sum::<usize>());
            }
        }
    }

    #[test]
    fn streaming_consume_runs_in_morsel_order() {
        for threads in [1, 2, 4, 8] {
            let morsels = partition_morsels(1000, 7);
            let expect: Vec<usize> = morsels.iter().map(|m| m.range().sum()).collect();
            let mut got: Vec<(usize, usize)> = Vec::new();
            execute_morsels_streaming(
                threads,
                morsels,
                |_, m| m.range().sum::<usize>(),
                |i, r| got.push((i, r)),
            );
            assert_eq!(got.len(), expect.len());
            for (pos, (i, r)) in got.iter().enumerate() {
                assert_eq!(*i, pos, "consume order at DOP {threads}");
                assert_eq!(*r, expect[pos]);
            }
        }
    }

    #[test]
    fn streaming_propagates_worker_panics() {
        let result = std::panic::catch_unwind(|| {
            execute_morsels_streaming(
                4,
                partition_morsels(1000, 7),
                |i, _| {
                    if i == 57 {
                        panic!("worker blew up");
                    }
                    i
                },
                |_, _| {},
            );
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn execute_morsels_runs_work_concurrently_but_deterministically() {
        let domain = 5000;
        let sequential = execute_morsels(1, partition_morsels(domain, 13), |_, m| m.len());
        let parallel = execute_morsels(4, partition_morsels(domain, 13), |_, m| m.len());
        assert_eq!(sequential, parallel);
        assert_eq!(parallel.iter().sum::<usize>(), domain);
    }

    #[test]
    fn config_builders_clamp_to_one() {
        let cfg = ExecConfig::sequential()
            .with_threads(0)
            .with_batch_capacity(0)
            .with_morsel_size(0);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.batch_capacity, 1);
        assert_eq!(cfg.morsel_size, 1);
    }

    #[test]
    fn parse_bytes_accepts_binary_suffixes_and_rejects_junk() {
        assert_eq!(parse_bytes("4096"), Some(4096));
        assert_eq!(parse_bytes(" 256k "), Some(256 * 1024));
        assert_eq!(parse_bytes("2M"), Some(2 * 1024 * 1024));
        assert_eq!(parse_bytes("1g"), Some(1024 * 1024 * 1024));
        assert_eq!(parse_bytes("0"), None);
        assert_eq!(parse_bytes(""), None);
        assert_eq!(parse_bytes("lots"), None);
    }

    #[test]
    fn budget_builder_filters_zero() {
        let cfg = ExecConfig::default().with_mem_budget(Some(0));
        assert_eq!(cfg.mem_budget, None);
        let cfg = cfg.with_mem_budget(Some(1 << 20)).with_spill_dir("/tmp/x");
        assert_eq!(cfg.mem_budget, Some(1 << 20));
        assert_eq!(
            cfg.spill_dir.as_deref(),
            Some(std::path::Path::new("/tmp/x"))
        );
    }

    #[test]
    fn try_execute_morsels_returns_first_error_and_drains() {
        use std::sync::atomic::AtomicUsize;
        for threads in [1, 4] {
            let ran = AtomicUsize::new(0);
            let result: Result<Vec<usize>, String> =
                try_execute_morsels(threads, partition_morsels(1000, 7), |i, m| {
                    ran.fetch_add(1, Ordering::Relaxed);
                    if i == 3 {
                        Err(format!("morsel {i} failed"))
                    } else {
                        Ok(m.len())
                    }
                });
            assert_eq!(result, Err("morsel 3 failed".into()), "at DOP {threads}");
            // The queue drains after the failure: at DOP 1 exactly the
            // prefix runs; in parallel some in-flight morsels may finish
            // but nothing close to the full crew's worth re-runs.
            if threads == 1 {
                assert_eq!(ran.load(Ordering::Relaxed), 4);
            }
        }
    }

    #[test]
    fn try_execute_morsels_ok_matches_infallible_shim() {
        let morsels = partition_morsels(1000, 7);
        let via_shim = execute_morsels(4, morsels.clone(), |_, m| m.len());
        let via_try: Result<Vec<usize>, std::convert::Infallible> =
            try_execute_morsels(4, morsels, |_, m| Ok(m.len()));
        assert_eq!(via_try, Ok(via_shim));
    }

    #[test]
    fn try_streaming_surfaces_worker_errors_without_hanging() {
        for threads in [1, 4] {
            let mut consumed = Vec::new();
            let result = try_execute_morsels_streaming(
                threads,
                partition_morsels(1000, 7),
                |i, m| {
                    if i == 57 {
                        Err(ExecError::Cancelled)
                    } else {
                        Ok(m.len())
                    }
                },
                |i, r| {
                    consumed.push((i, r));
                    Ok(())
                },
            );
            assert_eq!(result, Err(ExecError::Cancelled), "at DOP {threads}");
            // Whatever was consumed before the error is the ordered prefix.
            for (pos, (i, _)) in consumed.iter().enumerate() {
                assert_eq!(*i, pos);
            }
        }
    }

    #[test]
    fn try_streaming_surfaces_consume_errors() {
        for threads in [1, 4] {
            let result = try_execute_morsels_streaming(
                threads,
                partition_morsels(1000, 7),
                |_, m| Ok::<usize, ExecError>(m.len()),
                |i, _| {
                    if i == 5 {
                        Err(ExecError::Cancelled)
                    } else {
                        Ok(())
                    }
                },
            );
            assert_eq!(result, Err(ExecError::Cancelled), "at DOP {threads}");
        }
    }

    #[test]
    fn try_streaming_still_propagates_panics() {
        let result = std::panic::catch_unwind(|| {
            let _: Result<(), ExecError> = try_execute_morsels_streaming(
                4,
                partition_morsels(1000, 7),
                |i, _| {
                    if i == 57 {
                        panic!("worker blew up");
                    }
                    Ok(i)
                },
                |_, _| Ok(()),
            );
        });
        assert!(result.is_err(), "the worker panic must reach the caller");
    }

    #[test]
    fn parse_duration_accepts_suffixes_and_rejects_junk() {
        use std::time::Duration;
        assert_eq!(parse_duration("250"), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration(" 250ms "), Some(Duration::from_millis(250)));
        assert_eq!(parse_duration("3s"), Some(Duration::from_secs(3)));
        assert_eq!(parse_duration("2m"), Some(Duration::from_secs(120)));
        assert_eq!(parse_duration("0"), None);
        assert_eq!(parse_duration(""), None);
        assert_eq!(parse_duration("soon"), None);
    }

    #[test]
    fn timeout_builder_filters_zero_and_defaults_are_off() {
        use std::time::Duration;
        let cfg = ExecConfig::default();
        assert_eq!(cfg.spill_retries, crate::spill::DEFAULT_SPILL_RETRIES);
        assert_eq!(cfg.query_timeout, None);
        let cfg = cfg
            .with_spill_retries(0)
            .with_query_timeout(Some(Duration::ZERO));
        assert_eq!(cfg.spill_retries, 0);
        assert_eq!(cfg.query_timeout, None);
        let cfg = cfg.with_query_timeout(Some(Duration::from_secs(1)));
        assert_eq!(cfg.query_timeout, Some(Duration::from_secs(1)));
    }
}
