//! The database catalog: named tables, their secondary B-tree indexes, and
//! their statistics.
//!
//! The catalog is deliberately tiny — the workload of this system consists
//! of self-joins over a single `doc` table — but it is structured like a
//! real catalog so the optimizer's index selection and statistics lookups
//! read naturally.

use crate::btree::{BPlusTree, Key};
use crate::stats::TableStats;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;

/// Definition of a secondary index.
#[derive(Debug, Clone)]
pub struct IndexDef {
    /// Index name (e.g. `nkspl` in the paper's Table VI).
    pub name: String,
    /// Table the index is built over.
    pub table: String,
    /// Key columns, most significant first.
    pub key_columns: Vec<String>,
    /// Non-key columns carried on the leaf pages (DB2's `INCLUDE(...)`).
    pub include_columns: Vec<String>,
    /// Clustered indexes determine the base table's physical order.
    pub clustered: bool,
}

/// A built index: definition plus the backing B+tree.
#[derive(Debug, Clone)]
pub struct BuiltIndex {
    /// The index definition.
    pub def: IndexDef,
    /// The B+tree mapping key-column tuples to row ids of the base table.
    pub tree: BPlusTree,
}

impl BuiltIndex {
    /// Does the index key start with the given column sequence?
    pub fn key_prefix_matches(&self, columns: &[String]) -> bool {
        columns.len() <= self.def.key_columns.len()
            && self.def.key_columns[..columns.len()] == *columns
    }

    /// All columns retrievable from the index without touching the base
    /// table (key columns + include columns).
    pub fn covered_columns(&self) -> Vec<String> {
        let mut cols = self.def.key_columns.clone();
        cols.extend(self.def.include_columns.iter().cloned());
        cols
    }
}

/// An in-memory database: tables, indexes, statistics.
#[derive(Debug, Default)]
pub struct Database {
    tables: HashMap<String, Table>,
    indexes: Vec<BuiltIndex>,
    stats: HashMap<String, TableStats>,
    /// Catalog version stamp, advanced on every DDL mutation.  Consumers
    /// caching derived physical structures (e.g. memoized hash-join build
    /// sides) compare stamps to detect staleness.  Stamps are drawn from a
    /// process-wide counter so two [`Database`] instances never reuse one.
    version: u64,
}

/// Process-wide catalog-version dispenser (see [`Database::version`]).
static CATALOG_VERSION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// The catalog's current version stamp.  Any DDL (table or index
    /// creation) moves the stamp to a value never handed out before, in
    /// this or any other [`Database`] of the process.
    pub fn version(&self) -> u64 {
        self.version
    }

    fn bump_version(&mut self) {
        self.version = CATALOG_VERSION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Register (or replace) a table and collect its statistics.
    pub fn create_table(&mut self, name: impl Into<String>, table: Table) {
        let name = name.into();
        let stats = TableStats::collect(&table);
        self.stats.insert(name.clone(), stats);
        self.tables.insert(name, table);
        self.bump_version();
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Look up a table's statistics.
    pub fn stats(&self, name: &str) -> Option<&TableStats> {
        self.stats.get(name)
    }

    /// Registered table names.
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Build a B-tree index over `def.key_columns` of `def.table`.
    ///
    /// # Panics
    /// Panics when the table or one of the key columns does not exist —
    /// index DDL errors are programming errors in this system.
    pub fn create_index(&mut self, def: IndexDef) {
        let table = self
            .tables
            .get(&def.table)
            .unwrap_or_else(|| panic!("create_index: unknown table {}", def.table));
        let key_idx: Vec<usize> = def
            .key_columns
            .iter()
            .map(|c| table.schema().expect_index(c))
            .collect();
        let entries: Vec<(Key, usize)> = table
            .rows()
            .iter()
            .enumerate()
            .map(|(rid, row)| {
                let key: Key = key_idx.iter().map(|&i| row[i].clone()).collect();
                (key, rid)
            })
            .collect();
        let tree = BPlusTree::bulk_load(entries);
        // Replace an index with the same name (idempotent DDL).
        self.indexes.retain(|ix| ix.def.name != def.name);
        self.indexes.push(BuiltIndex { def, tree });
        self.bump_version();
    }

    /// All indexes built over a table.
    pub fn indexes_on(&self, table: &str) -> Vec<&BuiltIndex> {
        self.indexes
            .iter()
            .filter(|ix| ix.def.table == table)
            .collect()
    }

    /// Look up an index by name.
    pub fn index(&self, name: &str) -> Option<&BuiltIndex> {
        self.indexes.iter().find(|ix| ix.def.name == name)
    }

    /// All index names (useful for EXPLAIN output and tests).
    pub fn index_names(&self) -> Vec<&str> {
        self.indexes.iter().map(|ix| ix.def.name.as_str()).collect()
    }

    /// Fetch the row values of `table` at `row_id` for the given columns.
    pub fn fetch(&self, table: &str, row_id: usize, columns: &[String]) -> Vec<Value> {
        let t = &self.tables[table];
        columns
            .iter()
            .map(|c| t.rows()[row_id][t.schema().expect_index(c)].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::ops::Bound;

    fn db() -> Database {
        let mut t = Table::new(Schema::new(["pre", "name", "kind"]));
        for i in 0..100i64 {
            let name = if i % 2 == 0 { "item" } else { "price" };
            t.push(vec![Value::Int(i), Value::str(name), Value::Int(1)]);
        }
        let mut db = Database::new();
        db.create_table("doc", t);
        db.create_index(IndexDef {
            name: "np".to_string(),
            table: "doc".to_string(),
            key_columns: vec!["name".to_string(), "pre".to_string()],
            include_columns: vec![],
            clustered: false,
        });
        db
    }

    #[test]
    fn table_and_stats_registered() {
        let db = db();
        assert!(db.table("doc").is_some());
        assert_eq!(db.stats("doc").unwrap().rows, 100);
        assert_eq!(db.table_names(), vec!["doc"]);
    }

    #[test]
    fn ddl_advances_the_catalog_version_uniquely() {
        let mut a = db();
        let v0 = a.version();
        a.create_index(IndexDef {
            name: "extra".to_string(),
            table: "doc".to_string(),
            key_columns: vec!["pre".to_string()],
            include_columns: vec![],
            clustered: false,
        });
        assert!(a.version() > v0, "index DDL bumps the version");
        // A second database never reuses a stamp the first one held.
        let b = db();
        assert_ne!(a.version(), b.version());
        assert_ne!(v0, b.version());
    }

    #[test]
    fn index_lookup_returns_matching_rows() {
        let db = db();
        let ix = db.index("np").unwrap();
        let hits = ix.tree.lookup_prefix(&[Value::str("item")]);
        assert_eq!(hits.len(), 50);
        // Every returned row id indeed stores name = 'item'.
        for rid in hits {
            assert_eq!(
                db.fetch("doc", rid, &["name".to_string()])[0],
                Value::str("item")
            );
        }
    }

    #[test]
    fn index_range_scan_with_composite_bounds() {
        let db = db();
        let ix = db.index("np").unwrap();
        let lo = vec![Value::str("item"), Value::Int(10)];
        let hi = vec![Value::str("item"), Value::Int(20)];
        let hits = ix.tree.range(Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(hits.len(), 6); // pre in {10,12,14,16,18,20}
    }

    #[test]
    fn key_prefix_matching_and_coverage() {
        let db = db();
        let ix = db.index("np").unwrap();
        assert!(ix.key_prefix_matches(&["name".to_string()]));
        assert!(ix.key_prefix_matches(&["name".to_string(), "pre".to_string()]));
        assert!(!ix.key_prefix_matches(&["pre".to_string()]));
        assert_eq!(
            ix.covered_columns(),
            vec!["name".to_string(), "pre".to_string()]
        );
    }

    #[test]
    fn recreating_an_index_replaces_it() {
        let mut db = db();
        db.create_index(IndexDef {
            name: "np".to_string(),
            table: "doc".to_string(),
            key_columns: vec!["pre".to_string()],
            include_columns: vec![],
            clustered: true,
        });
        assert_eq!(db.indexes_on("doc").len(), 1);
        assert_eq!(
            db.index("np").unwrap().def.key_columns,
            vec!["pre".to_string()]
        );
    }

    #[test]
    #[should_panic(expected = "unknown table")]
    fn index_on_missing_table_panics() {
        let mut db = Database::new();
        db.create_index(IndexDef {
            name: "x".to_string(),
            table: "nope".to_string(),
            key_columns: vec!["a".to_string()],
            include_columns: vec![],
            clustered: false,
        });
    }
}
