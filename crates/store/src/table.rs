//! In-memory row tables.
//!
//! Tables are the unit of data exchange between every layer of the system:
//! the shredded XML encoding, intermediate results of the stacked-plan
//! evaluator, and the output of the physical operators of `xqjg-engine`.

use crate::schema::Schema;
use crate::value::Value;

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A table: a schema plus rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Create a table from a schema and pre-built rows.
    ///
    /// # Panics
    /// Panics when a row's arity does not match the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        for r in &rows {
            assert_eq!(
                r.len(),
                schema.len(),
                "row arity {} does not match schema {}",
                r.len(),
                schema
            );
        }
        Table { schema, rows }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the row's arity does not match the schema.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row arity {} does not match schema {}",
            row.len(),
            self.schema
        );
        self.rows.push(row);
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable row access (used by sort operators).
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        &mut self.rows
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Value at (row, column-name).
    pub fn value(&self, row: usize, column: &str) -> &Value {
        &self.rows[row][self.schema.expect_index(column)]
    }

    /// Project onto the named columns (in the given order), optionally
    /// renaming: `(new_name, old_name)` pairs.
    pub fn project(&self, columns: &[(String, String)]) -> Table {
        let indices: Vec<usize> = columns
            .iter()
            .map(|(_, old)| self.schema.expect_index(old))
            .collect();
        let schema = Schema::new(columns.iter().map(|(new, _)| new.clone()));
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Table { schema, rows }
    }

    /// Keep only rows satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&Row, &Schema) -> bool) -> Table {
        let rows = self
            .rows
            .iter()
            .filter(|r| pred(r, &self.schema))
            .cloned()
            .collect();
        Table {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Sort rows by the given columns ascending (stable).
    pub fn sort_by_columns(&mut self, columns: &[String]) {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.expect_index(c))
            .collect();
        self.rows.sort_by(|a, b| {
            for &i in &idx {
                let o = a[i].cmp(&b[i]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Remove duplicate rows (set semantics); preserves the first occurrence
    /// order.
    pub fn distinct(&self) -> Table {
        let mut seen = std::collections::HashSet::new();
        let mut rows = Vec::new();
        for r in &self.rows {
            if seen.insert(r.clone()) {
                rows.push(r.clone());
            }
        }
        Table {
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Pretty-print the table (used by examples, EXPLAIN output and tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.schema));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("[{}]\n", cells.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(["iter", "item"]));
        t.push(vec![Value::Int(1), Value::Int(10)]);
        t.push(vec![Value::Int(1), Value::Int(12)]);
        t.push(vec![Value::Int(2), Value::Int(10)]);
        t
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(1, "item"), &Value::Int(12));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(Schema::new(["a"]));
        t.push(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn project_with_rename() {
        let t = sample();
        let p = t.project(&[("x".to_string(), "item".to_string())]);
        assert_eq!(p.schema().columns(), &["x".to_string()]);
        assert_eq!(p.rows()[0], vec![Value::Int(10)]);
    }

    #[test]
    fn filter_rows() {
        let t = sample();
        let f = t.filter(|r, s| r[s.expect_index("iter")] == Value::Int(1));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn sort_and_distinct() {
        let mut t = sample();
        t.push(vec![Value::Int(1), Value::Int(10)]);
        let d = t.distinct();
        assert_eq!(d.len(), 3);
        let mut s = d;
        s.sort_by_columns(&["item".to_string(), "iter".to_string()]);
        assert_eq!(s.rows()[0], vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(s.rows()[1], vec![Value::Int(2), Value::Int(10)]);
    }

    #[test]
    fn render_contains_schema_and_rows() {
        let t = sample();
        let r = t.render();
        assert!(r.contains("(iter, item)"));
        assert!(r.contains("[1, 12]"));
    }
}
