//! In-memory row tables.
//!
//! Tables are the unit of data exchange between every layer of the system:
//! the shredded XML encoding, intermediate results of the stacked-plan
//! evaluator, and the output of the physical operators of `xqjg-engine`.

use std::sync::{Arc, OnceLock};

use crate::schema::Schema;
use crate::typed::{TypedColumn, TypedColumns};
use crate::value::Value;

/// A row: one value per schema column.
pub type Row = Vec<Value>;

/// A table: a schema plus rows, plus a lazily-built [`TypedColumns`] image
/// the kernelized hot paths read (invalidated on any mutation; never part
/// of the table's identity — equality compares schema and rows only).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    rows: Vec<Row>,
    typed: OnceLock<Arc<TypedColumns>>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema && self.rows == other.rows
    }
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            typed: OnceLock::new(),
        }
    }

    /// Create a table from a schema and pre-built rows.
    ///
    /// # Panics
    /// Panics when a row's arity does not match the schema.
    pub fn from_rows(schema: Schema, rows: Vec<Row>) -> Self {
        for r in &rows {
            assert_eq!(
                r.len(),
                schema.len(),
                "row arity {} does not match schema {}",
                r.len(),
                schema
            );
        }
        Table {
            schema,
            rows,
            typed: OnceLock::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics when the row's arity does not match the schema.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row arity {} does not match schema {}",
            row.len(),
            self.schema
        );
        self.typed.take();
        self.rows.push(row);
    }

    /// The rows in insertion order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Mutable row access (used by sort operators).  Invalidates the typed
    /// column cache — the caller may rewrite any row.
    pub fn rows_mut(&mut self) -> &mut Vec<Row> {
        self.typed.take();
        &mut self.rows
    }

    /// The typed column images of this table, built on first use and
    /// memoized until the table is mutated.  Thread-safe: parallel workers
    /// share one image per table.
    pub fn typed(&self) -> &TypedColumns {
        self.typed
            .get_or_init(|| Arc::new(TypedColumns::build(self.schema.len(), &self.rows)))
            .as_ref()
    }

    /// Consume the table, returning its rows.
    pub fn into_rows(self) -> Vec<Row> {
        self.rows
    }

    /// Value at (row, column-name).
    pub fn value(&self, row: usize, column: &str) -> &Value {
        &self.rows[row][self.schema.expect_index(column)]
    }

    /// Project onto the named columns (in the given order), optionally
    /// renaming: `(new_name, old_name)` pairs.
    pub fn project(&self, columns: &[(String, String)]) -> Table {
        let indices: Vec<usize> = columns
            .iter()
            .map(|(_, old)| self.schema.expect_index(old))
            .collect();
        let schema = Schema::new(columns.iter().map(|(new, _)| new.clone()));
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Table::from_rows(schema, rows)
    }

    /// Keep only rows satisfying the predicate.
    pub fn filter(&self, mut pred: impl FnMut(&Row, &Schema) -> bool) -> Table {
        let rows = self
            .rows
            .iter()
            .filter(|r| pred(r, &self.schema))
            .cloned()
            .collect();
        Table::from_rows(self.schema.clone(), rows)
    }

    /// Sort rows by the given columns ascending (stable).
    ///
    /// When every sort column has a typed image the sort runs columnar:
    /// the keys are extracted once, a permutation is sorted (rows never
    /// move during comparison), and the rows are gathered through it.  The
    /// typed key order equals [`Value::cmp`] on the column's values, so
    /// both paths produce identical row orders.
    pub fn sort_by_columns(&mut self, columns: &[String]) {
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.expect_index(c))
            .collect();
        let typed: Option<Vec<TypedColumn>> = idx
            .iter()
            .map(|&i| TypedColumn::from_rows(&self.rows, i))
            .collect();
        self.typed.take();
        if let Some(cols) = typed {
            let keys: Vec<crate::kernel::SortKey<'_>> = cols
                .iter()
                .map(|c| match c {
                    TypedColumn::Int { vals, validity } => crate::kernel::SortKey {
                        vals: crate::kernel::SortVals::I64(vals),
                        validity: validity.as_ref(),
                    },
                    TypedColumn::Dict {
                        codes, validity, ..
                    } => crate::kernel::SortKey {
                        vals: crate::kernel::SortVals::Code(codes),
                        validity: validity.as_ref(),
                    },
                })
                .collect();
            let perm = crate::kernel::sort_permutation_typed(&keys, self.rows.len());
            let mut old: Vec<Option<Row>> = std::mem::take(&mut self.rows)
                .into_iter()
                .map(Some)
                .collect();
            self.rows = perm
                .iter()
                .map(|&i| old[i as usize].take().expect("permutation is a bijection"))
                .collect();
            return;
        }
        self.rows.sort_by(|a, b| {
            for &i in &idx {
                let o = a[i].cmp(&b[i]);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    /// Remove duplicate rows (set semantics); preserves the first occurrence
    /// order.  Dedup goes through row indices, so each surviving row is
    /// cloned exactly once (the set borrows, the output clones).
    pub fn distinct(&self) -> Table {
        let mut seen: std::collections::HashSet<&Row> = std::collections::HashSet::new();
        let mut keep: Vec<usize> = Vec::new();
        for (i, r) in self.rows.iter().enumerate() {
            if seen.insert(r) {
                keep.push(i);
            }
        }
        let rows = keep.into_iter().map(|i| self.rows[i].clone()).collect();
        Table::from_rows(self.schema.clone(), rows)
    }

    /// Pretty-print the table (used by examples, EXPLAIN output and tests).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.schema));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            out.push_str(&format!("[{}]\n", cells.join(", ")));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(Schema::new(["iter", "item"]));
        t.push(vec![Value::Int(1), Value::Int(10)]);
        t.push(vec![Value::Int(1), Value::Int(12)]);
        t.push(vec![Value::Int(2), Value::Int(10)]);
        t
    }

    #[test]
    fn push_and_access() {
        let t = sample();
        assert_eq!(t.len(), 3);
        assert_eq!(t.value(1, "item"), &Value::Int(12));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_rejected() {
        let mut t = Table::new(Schema::new(["a"]));
        t.push(vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn project_with_rename() {
        let t = sample();
        let p = t.project(&[("x".to_string(), "item".to_string())]);
        assert_eq!(p.schema().columns(), &["x".to_string()]);
        assert_eq!(p.rows()[0], vec![Value::Int(10)]);
    }

    #[test]
    fn filter_rows() {
        let t = sample();
        let f = t.filter(|r, s| r[s.expect_index("iter")] == Value::Int(1));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn sort_and_distinct() {
        let mut t = sample();
        t.push(vec![Value::Int(1), Value::Int(10)]);
        let d = t.distinct();
        assert_eq!(d.len(), 3);
        let mut s = d;
        s.sort_by_columns(&["item".to_string(), "iter".to_string()]);
        assert_eq!(s.rows()[0], vec![Value::Int(1), Value::Int(10)]);
        assert_eq!(s.rows()[1], vec![Value::Int(2), Value::Int(10)]);
    }

    #[test]
    fn typed_cache_builds_lazily_and_invalidates_on_mutation() {
        let mut t = sample();
        assert_eq!(t.typed().int_col(0), Some(&[1i64, 1, 2][..]));
        assert_eq!(t.typed().int_col(1), Some(&[10i64, 12, 10][..]));
        t.push(vec![Value::Int(3), Value::Null]);
        // The cache was dropped on push; the new image sees the NULL and
        // builds a masked image (the no-NULL accessor refuses it).
        assert_eq!(t.typed().int_col(0), Some(&[1i64, 1, 2, 3][..]));
        assert!(t.typed().int_col(1).is_none());
        let (vals, validity) = t.typed().int_col_nullable(1).unwrap();
        assert_eq!(vals, &[10i64, 12, 10, 0]);
        assert!(!validity.unwrap().get(3));
        t.rows_mut()[3][1] = Value::Int(7);
        assert_eq!(t.typed().int_col(1), Some(&[10i64, 12, 10, 7][..]));
    }

    #[test]
    fn typed_sort_matches_value_sort() {
        let mk = |rows: Vec<Row>| Table::from_rows(Schema::new(["k", "s", "m"]), rows);
        let rows = vec![
            vec![Value::Int(2), Value::str("b"), Value::Dec(0.5)],
            vec![Value::Int(1), Value::str("c"), Value::Int(1)],
            vec![Value::Int(2), Value::str("a"), Value::Null],
            vec![Value::Int(1), Value::str("c"), Value::str("x")],
        ];
        // Typed path: (k, s) are uniformly typed.
        let mut typed = mk(rows.clone());
        typed.sort_by_columns(&["k".to_string(), "s".to_string()]);
        // Reference: the scalar comparator over the same columns ("m" is
        // mixed, so sorting by it exercises the fallback path).
        let mut scalar = mk(rows.clone());
        scalar
            .rows_mut()
            .sort_by(|a, b| a[0].cmp(&b[0]).then_with(|| a[1].cmp(&b[1])));
        assert_eq!(typed, scalar);
        let mut mixed = mk(rows);
        mixed.sort_by_columns(&["m".to_string()]);
        assert!(mixed.rows()[0][2].is_null(), "NULL sorts first");
    }

    #[test]
    fn nullable_typed_sort_matches_value_sort() {
        // A NULL-bearing int column now takes the typed permutation path;
        // its order must still equal the scalar comparator's (NULLs
        // first, ties in input order).
        let rows: Vec<Row> = [Some(5), None, Some(-3), None, Some(5), Some(0)]
            .iter()
            .enumerate()
            .map(|(i, v)| vec![v.map_or(Value::Null, Value::Int), Value::Int(i as i64)])
            .collect();
        let mk = |rows: Vec<Row>| Table::from_rows(Schema::new(["k", "tag"]), rows);
        let mut typed = mk(rows.clone());
        typed.sort_by_columns(&["k".to_string()]);
        let mut scalar = mk(rows);
        scalar.rows_mut().sort_by(|a, b| a[0].cmp(&b[0]));
        assert_eq!(typed, scalar);
        assert!(typed.rows()[0][0].is_null() && typed.rows()[1][0].is_null());
    }

    #[test]
    fn render_contains_schema_and_rows() {
        let t = sample();
        let r = t.render();
        assert!(r.contains("(iter, item)"));
        assert!(r.contains("[1, 12]"));
    }
}
