//! Concurrent, byte-bounded, LRU-evicting caches shared across sessions.
//!
//! [`ShardedLru`] is the generic substrate of the warm-path caching layer:
//! a lock-striped map whose entries carry a byte cost and an LRU stamp,
//! bounded per shard so the whole cache never holds more than its
//! configured capacity.  Every lookup carries the *catalog version* the
//! caller observed; a shard filled under an older version drops its
//! entries before serving the lookup, so DDL (table loads, index
//! creation) invalidates lazily without any coordination between
//! sessions.  All counters are atomics — the cache is `Sync` and meant to
//! be `Arc`-shared across `Processor` instances and worker threads.
//!
//! The cache itself accounts its contents in bytes against its own
//! capacity; what an *execution* pays for using a cached object (e.g. a
//! hash-join build side's resident bucket table) is still charged
//! through that execution's [`crate::MemBudget`] durable reservations by
//! the caller, so cache hits and misses make identical spill decisions.
//!
//! [`PostingsCache`] specializes the substrate for hot `IXSCAN` posting
//! lists: B-tree range-scan results keyed by (index name, resolved
//! bounds), so NLJOIN–IXSCAN inners stop re-walking the B-tree for
//! repeated outer keys and repeated queries.

use crate::value::Value;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of lock stripes.  Small and fixed: the shard index is a hash
/// masked into this range, and each shard gets `capacity / SHARDS` bytes.
const SHARDS: usize = 8;

/// Fixed per-entry bookkeeping charge (map slot, `Arc`, stamps) added on
/// top of the caller-reported value cost.
pub const CACHE_ENTRY_OVERHEAD: usize = 64;

struct Entry<V> {
    value: Arc<V>,
    cost: usize,
    last_used: u64,
}

struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    bytes: usize,
    /// Catalog version this shard's entries were cached under.
    version: u64,
}

impl<K, V> Shard<K, V> {
    fn new() -> Self {
        Shard {
            map: HashMap::new(),
            bytes: 0,
            version: 0,
        }
    }
}

/// A concurrent byte-bounded LRU cache: `SHARDS` independently locked
/// stripes, per-entry byte costs, least-recently-used eviction within a
/// stripe, and lazy whole-cache invalidation by catalog version stamp.
///
/// A capacity of `0` disables the cache: lookups count (so hit-rate
/// telemetry stays meaningful) but never hit, and inserts are dropped.
/// An entry costlier than one stripe's share of the capacity is never
/// admitted — the cache prefers many warm small objects over one giant
/// one.
pub struct ShardedLru<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    hasher: RandomState,
    capacity: usize,
    per_shard: usize,
    tick: AtomicU64,
    hits: AtomicUsize,
    lookups: AtomicUsize,
    insertions: AtomicUsize,
    evictions: AtomicUsize,
}

impl<K: Hash + Eq + Clone, V> ShardedLru<K, V> {
    /// A cache bounded to `capacity` bytes across all stripes.
    pub fn new(capacity: usize) -> Self {
        ShardedLru {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            hasher: RandomState::new(),
            capacity,
            per_shard: capacity / SHARDS,
            tick: AtomicU64::new(0),
            hits: AtomicUsize::new(0),
            lookups: AtomicUsize::new(0),
            insertions: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<Shard<K, V>> {
        let h = self.hasher.hash_one(key) as usize;
        &self.shards[h % SHARDS]
    }

    /// Drop a shard's entries if they were cached under a different
    /// catalog version (DDL happened since); invalidations count as
    /// evictions.
    fn sync_version(&self, shard: &mut Shard<K, V>, version: u64) {
        if shard.version != version {
            self.evictions.fetch_add(shard.map.len(), Ordering::Relaxed);
            shard.map.clear();
            shard.bytes = 0;
            shard.version = version;
        }
    }

    /// Look `key` up under catalog version `version`.  Counts a lookup
    /// always and a hit when found; a hit refreshes the entry's LRU stamp.
    pub fn get(&self, version: u64, key: &K) -> Option<Arc<V>> {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return None;
        }
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        self.sync_version(&mut shard, version);
        let entry = shard.map.get_mut(key)?;
        entry.last_used = self.tick.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(entry.value.clone())
    }

    /// Insert `value` for `key` with the given byte cost (the entry
    /// overhead is added here), evicting least-recently-used entries of
    /// the target stripe until it fits.  Returns whether the entry was
    /// admitted; oversized entries and a zero capacity are not.  Racing
    /// inserts of one key are last-writer-wins (both values are correct —
    /// cached objects are pure functions of their key and the catalog
    /// version).
    pub fn insert(&self, version: u64, key: K, value: Arc<V>, cost: usize) -> bool {
        let cost = cost + CACHE_ENTRY_OVERHEAD;
        if self.capacity == 0 || cost > self.per_shard {
            return false;
        }
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        self.sync_version(&mut shard, version);
        if let Some(old) = shard.map.remove(&key) {
            shard.bytes -= old.cost;
        }
        while shard.bytes + cost > self.per_shard && !shard.map.is_empty() {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard has a victim");
            if let Some(e) = shard.map.remove(&victim) {
                shard.bytes -= e.cost;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        shard.bytes += cost;
        shard.map.insert(
            key,
            Entry {
                value,
                cost,
                last_used: self.tick.fetch_add(1, Ordering::Relaxed),
            },
        );
        self.insertions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// `get` or compute-and-insert.  The computation runs *outside* the
    /// stripe lock: two sessions racing on one cold key may both compute
    /// (the cache trades duplicate work under a race for never holding a
    /// lock across user code); last insert wins and both callers get a
    /// correct value.  A failed computation inserts nothing.
    pub fn get_or_try_insert<E>(
        &self,
        version: u64,
        key: &K,
        cost_of: impl FnOnce(&V) -> usize,
        build: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<(Arc<V>, bool), E> {
        if let Some(v) = self.get(version, key) {
            return Ok((v, true));
        }
        let value = build()?;
        let cost = cost_of(&value);
        self.insert(version, key.clone(), value.clone(), cost);
        Ok((value, false))
    }

    /// Number of entries currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the capacity.
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").bytes)
            .sum()
    }

    /// The configured byte capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Entries admitted.
    pub fn insertions(&self) -> usize {
        self.insertions.load(Ordering::Relaxed)
    }

    /// Entries dropped (LRU eviction and version invalidation alike).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for s in &self.shards {
            let mut shard = s.lock().expect("cache shard poisoned");
            self.evictions.fetch_add(shard.map.len(), Ordering::Relaxed);
            shard.map.clear();
            shard.bytes = 0;
        }
    }
}

/// Key of one memoized `IXSCAN` posting list: the index name plus the
/// *resolved* range bounds (outer bindings already evaluated to values).
/// An empty bound vector means that side is unbounded, matching the
/// B-tree range convention; its inclusivity flag is normalized to `true`
/// by the producers so an unbounded side has exactly one spelling.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PostingsKey {
    /// Index name (unique in the catalog; the catalog version stamp
    /// invalidates on index DDL, so a recreated index never aliases).
    pub index: String,
    /// Resolved lower-bound composite key (empty = unbounded).
    pub lower: Vec<Value>,
    /// Lower bound inclusive?
    pub lower_inc: bool,
    /// Resolved upper-bound composite key (empty = unbounded).
    pub upper: Vec<Value>,
    /// Upper bound inclusive?
    pub upper_inc: bool,
}

impl PostingsKey {
    /// The lower bound as a B-tree range bound (empty key = unbounded).
    pub fn lower_bound(&self) -> std::ops::Bound<&[Value]> {
        if self.lower.is_empty() {
            std::ops::Bound::Unbounded
        } else if self.lower_inc {
            std::ops::Bound::Included(self.lower.as_slice())
        } else {
            std::ops::Bound::Excluded(self.lower.as_slice())
        }
    }

    /// The upper bound as a B-tree range bound (empty key = unbounded).
    pub fn upper_bound(&self) -> std::ops::Bound<&[Value]> {
        if self.upper.is_empty() {
            std::ops::Bound::Unbounded
        } else if self.upper_inc {
            std::ops::Bound::Included(self.upper.as_slice())
        } else {
            std::ops::Bound::Excluded(self.upper.as_slice())
        }
    }

    /// Approximate heap footprint of the key itself.
    fn cost(&self) -> usize {
        let val = |v: &Value| match v {
            Value::Str(s) => 24 + s.len(),
            _ => 16,
        };
        self.index.len()
            + 24
            + self.lower.iter().map(val).sum::<usize>()
            + self.upper.iter().map(val).sum::<usize>()
    }
}

/// Default [`PostingsCache`] capacity.
pub const POSTINGS_CACHE_BYTES: usize = 32 << 20;

/// Memo of hot `IXSCAN` posting lists (B-tree range-scan results), shared
/// across sessions via `Arc` and invalidated by the catalog version stamp
/// like every other cache of the warm path.  Cloning the handle shares
/// the underlying cache.
#[derive(Clone)]
pub struct PostingsCache {
    inner: Arc<ShardedLru<PostingsKey, Vec<usize>>>,
}

impl Default for PostingsCache {
    fn default() -> Self {
        PostingsCache::new()
    }
}

impl PostingsCache {
    /// A postings cache with the default byte capacity.
    pub fn new() -> Self {
        PostingsCache::with_capacity(POSTINGS_CACHE_BYTES)
    }

    /// A postings cache bounded to `bytes`.
    pub fn with_capacity(bytes: usize) -> Self {
        PostingsCache {
            inner: Arc::new(ShardedLru::new(bytes)),
        }
    }

    /// Fetch the posting list for `key` under catalog version `version`,
    /// computing (and memoizing) it on a miss.  The compute closure
    /// receives the key back so it can drive the B-tree scan from the
    /// resolved bounds ([`PostingsKey::lower_bound`] /
    /// [`PostingsKey::upper_bound`]).  Returns the postings and whether
    /// they came from the cache.
    pub fn get_or_compute(
        &self,
        version: u64,
        key: PostingsKey,
        compute: impl FnOnce(&PostingsKey) -> Vec<usize>,
    ) -> (Arc<Vec<usize>>, bool) {
        if let Some(v) = self.inner.get(version, &key) {
            return (v, true);
        }
        let rids = Arc::new(compute(&key));
        let cost = key.cost() + rids.len() * std::mem::size_of::<usize>() + 24;
        self.inner.insert(version, key, rids.clone(), cost);
        (rids, false)
    }

    /// Lookups satisfied from the cache.
    pub fn hits(&self) -> usize {
        self.inner.hits()
    }

    /// Total lookups.
    pub fn lookups(&self) -> usize {
        self.inner.lookups()
    }

    /// Entries dropped (LRU eviction and version invalidation alike).
    pub fn evictions(&self) -> usize {
        self.inner.evictions()
    }

    /// Number of memoized posting lists.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Bytes currently charged against the capacity.
    pub fn bytes(&self) -> usize {
        self.inner.bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: usize) -> String {
        format!("key-{i}")
    }

    #[test]
    fn get_miss_then_insert_then_hit() {
        let c: ShardedLru<String, usize> = ShardedLru::new(1 << 20);
        assert!(c.get(1, &key(0)).is_none());
        assert!(c.insert(1, key(0), Arc::new(7), 100));
        assert_eq!(c.get(1, &key(0)).as_deref(), Some(&7));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.lookups(), 2);
        assert_eq!(c.len(), 1);
        assert!(c.bytes() >= 100 + CACHE_ENTRY_OVERHEAD);
    }

    #[test]
    fn byte_bound_evicts_least_recently_used() {
        // One shard's share is capacity / 8; force everything into one
        // stripe by reusing keys until two land together.
        let cap = 8 * 1024;
        let c: ShardedLru<String, usize> = ShardedLru::new(cap);
        // Each entry costs ~400 + overhead, one stripe holds 1024 bytes:
        // at most two entries per stripe.
        for i in 0..64 {
            c.insert(1, key(i), Arc::new(i), 400);
        }
        assert!(c.evictions() > 0, "insertions past the bound must evict");
        assert!(c.bytes() <= cap, "resident bytes respect the capacity");
        assert!(c.len() < 64);
        // The freshest keys of each stripe are the survivors: re-inserting
        // an old key evicts the stripe's least recently used, not the
        // newest.
        let survivors: Vec<usize> = (0..64).filter(|&i| c.get(1, &key(i)).is_some()).collect();
        assert!(!survivors.is_empty());
    }

    #[test]
    fn lru_prefers_recently_touched_entries() {
        let c: ShardedLru<u8, usize> = ShardedLru::new(8 * (CACHE_ENTRY_OVERHEAD + 8) * 2);
        // Find two keys sharing a stripe so the stripe holds exactly two.
        let mut by_shard: HashMap<usize, Vec<u8>> = HashMap::new();
        for k in 0u8..255 {
            let h = c.hasher.hash_one(k) as usize % SHARDS;
            by_shard.entry(h).or_default().push(k);
        }
        let trio = by_shard
            .values()
            .find(|v| v.len() >= 3)
            .expect("some stripe holds three keys")
            .clone();
        let (a, b, d) = (trio[0], trio[1], trio[2]);
        c.insert(1, a, Arc::new(1), 8);
        c.insert(1, b, Arc::new(2), 8);
        // Touch `a` so `b` is the LRU entry, then overflow the stripe.
        assert!(c.get(1, &a).is_some());
        c.insert(1, d, Arc::new(3), 8);
        assert!(c.get(1, &a).is_some(), "recently used entry survives");
        assert!(c.get(1, &b).is_none(), "LRU entry was evicted");
    }

    #[test]
    fn version_change_invalidates_lazily() {
        let c: ShardedLru<String, usize> = ShardedLru::new(1 << 20);
        c.insert(1, key(1), Arc::new(1), 10);
        assert!(c.get(1, &key(1)).is_some());
        // Same key, newer catalog version: the stale entry must not serve.
        assert!(c.get(2, &key(1)).is_none());
        assert!(c.evictions() >= 1);
        // Refill under the new version works.
        c.insert(2, key(1), Arc::new(2), 10);
        assert_eq!(c.get(2, &key(1)).as_deref(), Some(&2));
    }

    #[test]
    fn zero_capacity_disables_but_counts_lookups() {
        let c: ShardedLru<String, usize> = ShardedLru::new(0);
        assert!(!c.insert(1, key(0), Arc::new(1), 1));
        assert!(c.get(1, &key(0)).is_none());
        assert_eq!(c.lookups(), 1);
        assert_eq!(c.hits(), 0);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let c: ShardedLru<String, usize> = ShardedLru::new(800);
        // per-shard share is 100 bytes; a 200-byte entry can never fit.
        assert!(!c.insert(1, key(0), Arc::new(1), 200));
        assert!(c.is_empty());
    }

    #[test]
    fn replacing_a_key_keeps_bytes_consistent() {
        let c: ShardedLru<String, usize> = ShardedLru::new(1 << 20);
        c.insert(1, key(0), Arc::new(1), 100);
        let b1 = c.bytes();
        c.insert(1, key(0), Arc::new(2), 100);
        assert_eq!(c.bytes(), b1, "replacement must not double-charge");
        assert_eq!(c.get(1, &key(0)).as_deref(), Some(&2));
    }

    #[test]
    fn get_or_try_insert_computes_once_outside_lock() {
        let c: ShardedLru<String, usize> = ShardedLru::new(1 << 20);
        let (v, hit) = c
            .get_or_try_insert::<()>(1, &key(0), |_| 10, || Ok(Arc::new(42)))
            .unwrap();
        assert_eq!((*v, hit), (42, false));
        let (v, hit) = c
            .get_or_try_insert::<()>(1, &key(0), |_| 10, || panic!("must not recompute"))
            .unwrap();
        assert_eq!((*v, hit), (42, true));
        // A failed build inserts nothing.
        let r = c.get_or_try_insert(1, &key(1), |_: &usize| 10, || Err("boom"));
        assert_eq!(r.unwrap_err(), "boom");
        assert!(c.get(1, &key(1)).is_none());
    }

    #[test]
    fn concurrent_hammer_stays_bounded_and_correct() {
        let c: Arc<ShardedLru<usize, usize>> = Arc::new(ShardedLru::new(16 * 1024));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..500 {
                        let k = (t * 131 + i * 7) % 64;
                        if let Some(v) = c.get(1, &k) {
                            assert_eq!(*v, k * 3, "cached value matches its key");
                        } else {
                            c.insert(1, k, Arc::new(k * 3), 64);
                        }
                        if i % 97 == 0 {
                            // A concurrent version bump never corrupts.
                            c.get(2, &k);
                            c.insert(2, k, Arc::new(k * 3), 64);
                            c.get(1, &k);
                            c.insert(1, k, Arc::new(k * 3), 64);
                        }
                    }
                });
            }
        });
        assert!(c.bytes() <= c.capacity());
        assert!(c.hits() <= c.lookups());
        for k in 0..64usize {
            if let Some(v) = c.get(1, &k) {
                assert_eq!(*v, k * 3);
            }
        }
    }

    #[test]
    fn postings_cache_roundtrip_and_invalidation() {
        let pc = PostingsCache::with_capacity(1 << 20);
        let k = PostingsKey {
            index: "nkp".into(),
            lower: vec![Value::str("bidder"), Value::Int(3)],
            lower_inc: false,
            upper: vec![Value::str("bidder"), Value::Int(9)],
            upper_inc: true,
        };
        let (v, hit) = pc.get_or_compute(1, k.clone(), |_| vec![4, 5, 6]);
        assert!(!hit);
        assert_eq!(*v, vec![4, 5, 6]);
        let (v, hit) = pc.get_or_compute(1, k.clone(), |_| panic!("must not rescan"));
        assert!(hit);
        assert_eq!(*v, vec![4, 5, 6]);
        assert_eq!(pc.hits(), 1);
        assert_eq!(pc.lookups(), 2);
        // Catalog moved: the same key recomputes.
        let (_, hit) = pc.get_or_compute(2, k, |_| vec![7]);
        assert!(!hit);
        assert!(pc.evictions() >= 1);
    }
}
