//! Columnar batches with selection vectors — the vectorized execution
//! substrate.
//!
//! The row-oriented [`crate::Batch`] moves one tuple per slot: a batch of
//! join bindings is a `Vec<Vec<usize>>` whose inner vectors are allocated
//! per binding, and every predicate evaluation re-resolves schema offsets
//! and clones [`crate::Value`]s.  [`ColumnBatch`] turns that layout on its
//! side: one contiguous rid column per bound alias, all columns the same
//! length, plus a *selection vector* naming the rows that are still alive.
//! Filters refine the selection vector instead of materializing survivors,
//! so a dropped row costs one skipped index — no move, no clone, no
//! allocation.  Operators that expand (joins) write directly into the
//! output columns: the per-binding `Vec` allocation of the row path
//! disappears entirely.
//!
//! The row-oriented [`crate::Operator`] protocol remains the compatibility
//! surface of the system; [`ColumnBatch::to_rows`] / [`ColumnBatch::from_rows`]
//! convert at the seams (the parity and property suites round-trip through
//! them).
//!
//! [`BatchSizer`] implements the adaptive batch-size policy: scan leaves
//! start at the configured batch capacity and grow their per-call scan
//! chunk when pushed-down predicates turn out to be selective, so a 1%
//! filter stops shipping 10-row batches through the whole pipeline.  The
//! sizer records its decisions into a trace the benchmark harness dumps
//! alongside the per-operator counters.

use crate::batch::OpStats;
use crate::mask::BitMask;

/// A batch of join bindings in columnar layout: one rid column per bound
/// alias plus a selection vector.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    /// One column per alias, outer-to-inner; all columns have equal length.
    cols: Vec<Vec<usize>>,
    /// Indices of live rows (ascending); `None` means all rows are live.
    sel: Option<Vec<u32>>,
    /// Target number of live rows per batch (advisory, not a hard bound:
    /// an expanding operator may overshoot by one probe's matches).
    cap: usize,
}

impl ColumnBatch {
    /// An empty batch of `arity` columns targeting `cap` live rows.
    pub fn new(arity: usize, cap: usize) -> Self {
        let cap = cap.max(1);
        ColumnBatch {
            cols: (0..arity.max(1)).map(|_| Vec::with_capacity(cap)).collect(),
            sel: None,
            cap,
        }
    }

    /// Number of alias columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Physical row count (live and filtered-out rows alike).
    pub fn rows(&self) -> usize {
        self.cols[0].len()
    }

    /// Number of live (selected) rows.
    pub fn live(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.rows(),
        }
    }

    /// Is the batch devoid of live rows?
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// The advisory live-row target.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// A column's rids (physical order — index through the selection).
    pub fn col(&self, i: usize) -> &[usize] {
        &self.cols[i]
    }

    /// Mutable column access (operators fill columns directly).
    pub fn col_mut(&mut self, i: usize) -> &mut Vec<usize> {
        &mut self.cols[i]
    }

    /// All columns at once (the expand loop of a join reads the outer
    /// columns while writing its own — split via `split_at_mut` upstream).
    pub fn cols(&self) -> &[Vec<usize>] {
        &self.cols
    }

    /// The selection vector, if any row has been filtered out.
    pub fn sel(&self) -> Option<&[u32]> {
        self.sel.as_deref()
    }

    /// Physical index of the `i`-th live row.
    #[inline]
    pub fn phys(&self, i: usize) -> usize {
        match &self.sel {
            Some(s) => s[i] as usize,
            None => i,
        }
    }

    /// Append one row (used by [`ColumnBatch::from_rows`] and the join
    /// expand loops via direct column access; arity checked in debug).
    pub fn push_row(&mut self, row: &[usize]) {
        debug_assert_eq!(row.len(), self.cols.len(), "row arity mismatch");
        debug_assert!(self.sel.is_none(), "push into a filtered batch");
        for (col, &v) in self.cols.iter_mut().zip(row) {
            col.push(v);
        }
    }

    /// Install a selection vector (indices must be ascending physical rows).
    pub fn set_sel(&mut self, sel: Vec<u32>) {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        debug_assert!(sel.last().is_none_or(|&i| (i as usize) < self.rows()));
        self.sel = Some(sel);
    }

    /// Refine the selection: keep only live rows whose *physical* index
    /// satisfies the predicate.  This is the column-at-a-time filter
    /// primitive — dropped rows are never moved or materialized.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let next = match self.sel.take() {
            Some(s) => s.into_iter().filter(|&i| keep(i as usize)).collect(),
            None => (0..self.rows() as u32)
                .filter(|&i| keep(i as usize))
                .collect(),
        };
        self.sel = Some(next);
    }

    /// Refine the selection by a predicate over one column's *values*:
    /// keep the live rows whose rid in column `col` satisfies `keep`.
    /// This is the leaf-filter fast path — the closure sees the rid
    /// directly, so a pushed-down σ never touches the batch structure.
    pub fn retain_by_col(&mut self, col: usize, mut keep: impl FnMut(usize) -> bool) {
        let column = std::mem::take(&mut self.cols[col]);
        // Not routed through `retain`: the physical row count must come
        // from the taken column, every column having the same length.
        let next: Vec<u32> = match self.sel.take() {
            Some(s) => s
                .into_iter()
                .filter(|&i| keep(column[i as usize]))
                .collect(),
            None => (0..column.len() as u32)
                .filter(|&i| keep(column[i as usize]))
                .collect(),
        };
        self.sel = Some(next);
        self.cols[col] = column;
    }

    /// Gather the rids of column `col` for the live rows, in live order —
    /// the input shape of the typed selection/hash kernels (which then run
    /// over a dense slice instead of chasing the selection vector).
    pub fn gather_col(&self, col: usize, out: &mut Vec<usize>) {
        out.clear();
        match &self.sel {
            Some(s) => out.extend(s.iter().map(|&i| self.cols[col][i as usize])),
            None => out.extend_from_slice(&self.cols[col]),
        }
    }

    /// Refine the selection by a packed keep mask aligned with the
    /// current *live* rows (bit `i` decides the `i`-th live row) — the
    /// output shape of the typed selection kernels.  The set-bit walk
    /// costs proportional to the survivor count, not the batch size.
    pub fn retain_by_mask(&mut self, keep: &BitMask) {
        debug_assert_eq!(keep.len(), self.live(), "mask/live-row mismatch");
        let next: Vec<u32> = match self.sel.take() {
            Some(s) => keep.ones().map(|i| s[i]).collect(),
            None => keep.ones().map(|i| i as u32).collect(),
        };
        self.sel = Some(next);
    }

    /// Drop filtered-out rows for real, clearing the selection vector.
    pub fn compact(&mut self) {
        let Some(sel) = self.sel.take() else { return };
        for col in &mut self.cols {
            for (slot, &i) in sel.iter().enumerate() {
                col[slot] = col[i as usize];
            }
            col.truncate(sel.len());
        }
    }

    /// Convert to row-major bindings (live rows only, batch order) — the
    /// seam back into the row-oriented [`crate::Operator`] world.
    pub fn to_rows(&self) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(self.live());
        for i in 0..self.live() {
            let p = self.phys(i);
            out.push(self.cols.iter().map(|c| c[p]).collect());
        }
        out
    }

    /// Build a columnar batch from row-major bindings.
    ///
    /// # Panics
    /// Panics when the rows disagree on arity.
    pub fn from_rows(rows: &[Vec<usize>], cap: usize) -> Self {
        let arity = rows.first().map(|r| r.len()).unwrap_or(1);
        let mut batch = ColumnBatch::new(arity, cap.max(rows.len()).max(1));
        for row in rows {
            assert_eq!(row.len(), arity, "binding arity mismatch");
            batch.push_row(row);
        }
        batch
    }
}

/// The pull-based columnar operator protocol: the vectorized mirror of
/// [`crate::Operator`], exchanging [`ColumnBatch`]es instead of row
/// batches.  Work counters use the same [`OpStats`] currency so EXPLAIN
/// actuals are path-independent.
pub trait ColOperator {
    /// Prepare for producing batches.
    fn open(&mut self);

    /// Produce the next batch, or `None` once exhausted.  Returned batches
    /// have at least one live row.
    fn next_batch(&mut self) -> Option<ColumnBatch>;

    /// Release resources and report counters to the stats sink.
    fn close(&mut self);

    /// The operator's current work counters.
    fn stats(&self) -> OpStats;
}

/// Upper bound on how far the adaptive policy will grow a leaf's scan chunk
/// beyond the configured batch capacity.  16× keeps the gathered column
/// slices cache-friendly while letting a 1%-selective filter still emit
/// usefully full batches.
pub const MAX_ADAPTIVE_GROWTH: usize = 16;

/// Adaptive batch-size policy for scan leaves.
///
/// A leaf scans `chunk()` domain positions per `next_batch` call and emits
/// the survivors of its pushed-down predicates.  The sizer starts at the
/// configured batch capacity and, from the measured selectivity (an
/// exponentially-weighted average of survivors/scanned), grows the chunk so
/// the *output* stays near the target — low-selectivity filters stop
/// shipping near-empty batches downstream.  The chunk never shrinks below
/// the target and never grows past `target × `[`MAX_ADAPTIVE_GROWTH`], and
/// every decision is recorded in [`BatchSizer::trace`].
#[derive(Debug, Clone)]
pub struct BatchSizer {
    target: usize,
    chunk: usize,
    smoothed_sel: f64,
    enabled: bool,
    trace: Vec<usize>,
}

impl BatchSizer {
    /// A sizer targeting `target` live rows per emitted batch.  When
    /// `enabled` is false the chunk is pinned to the target (the
    /// fixed-capacity behaviour).
    pub fn new(target: usize, enabled: bool) -> Self {
        let target = target.max(1);
        BatchSizer {
            target,
            chunk: target,
            smoothed_sel: 1.0,
            enabled,
            trace: Vec::new(),
        }
    }

    /// Domain positions the leaf should scan on its next call.
    pub fn chunk(&self) -> usize {
        self.chunk
    }

    /// Record one scan's outcome and adapt the chunk.
    pub fn observe(&mut self, scanned: usize, survived: usize) {
        if !self.enabled || scanned == 0 {
            return;
        }
        let sel = survived as f64 / scanned as f64;
        self.smoothed_sel = 0.5 * self.smoothed_sel + 0.5 * sel;
        let max = self.target * MAX_ADAPTIVE_GROWTH;
        let want = (self.target as f64 / self.smoothed_sel.max(1.0 / MAX_ADAPTIVE_GROWTH as f64))
            .ceil() as usize;
        self.chunk = want.clamp(self.target, max);
        self.trace.push(self.chunk);
    }

    /// The sequence of chunk sizes chosen so far (one entry per
    /// [`BatchSizer::observe`] call).
    pub fn trace(&self) -> &[usize] {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_batch_round_trips_rows() {
        let rows = vec![vec![1, 10], vec![2, 20], vec![3, 30]];
        let b = ColumnBatch::from_rows(&rows, 4);
        assert_eq!(b.arity(), 2);
        assert_eq!(b.rows(), 3);
        assert_eq!(b.live(), 3);
        assert_eq!(b.col(0), &[1, 2, 3]);
        assert_eq!(b.col(1), &[10, 20, 30]);
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn retain_refines_selection_without_moving_rows() {
        let rows: Vec<Vec<usize>> = (0..10).map(|i| vec![i]).collect();
        let mut b = ColumnBatch::from_rows(&rows, 16);
        b.retain(|i| i % 2 == 0);
        assert_eq!(b.rows(), 10, "physical rows untouched");
        assert_eq!(b.live(), 5);
        b.retain(|i| i >= 4);
        assert_eq!(b.live(), 3);
        assert_eq!(b.to_rows(), vec![vec![4], vec![6], vec![8]]);
        assert_eq!(b.sel(), Some(&[4u32, 6, 8][..]));
    }

    #[test]
    fn retain_by_col_filters_on_column_values() {
        let rows: Vec<Vec<usize>> = (0..8).map(|i| vec![i, 100 + i]).collect();
        let mut b = ColumnBatch::from_rows(&rows, 8);
        b.retain_by_col(1, |v| v % 2 == 1);
        assert_eq!(b.live(), 4);
        b.retain_by_col(0, |v| v > 3);
        assert_eq!(b.to_rows(), vec![vec![5, 105], vec![7, 107]]);
        assert_eq!(b.rows(), 8, "no rows were materialized away");
    }

    #[test]
    fn gather_and_mask_retain_mirror_retain_by_col() {
        let rows: Vec<Vec<usize>> = (0..8).map(|i| vec![i, 100 + i]).collect();
        let mut a = ColumnBatch::from_rows(&rows, 8);
        let mut b = a.clone();
        // Narrow both to even physical rows first.
        a.retain(|i| i % 2 == 0);
        b.retain(|i| i % 2 == 0);
        // a: closure filter; b: gather + kernel-style packed mask.
        a.retain_by_col(1, |v| v >= 104);
        let mut gathered = Vec::new();
        b.gather_col(1, &mut gathered);
        assert_eq!(gathered, vec![100, 102, 104, 106]);
        let mask = BitMask::from_bools(gathered.iter().map(|&v| v >= 104));
        b.retain_by_mask(&mask);
        assert_eq!(a.sel(), b.sel());
        assert_eq!(a.to_rows(), b.to_rows());
    }

    #[test]
    fn compact_materializes_the_selection() {
        let rows: Vec<Vec<usize>> = (0..6).map(|i| vec![i, i * 10]).collect();
        let mut b = ColumnBatch::from_rows(&rows, 8);
        b.retain(|i| i == 1 || i == 4);
        b.compact();
        assert_eq!(b.rows(), 2);
        assert!(b.sel().is_none());
        assert_eq!(b.to_rows(), vec![vec![1, 10], vec![4, 40]]);
        // Compacting an unfiltered batch is a no-op.
        b.compact();
        assert_eq!(b.rows(), 2);
    }

    #[test]
    fn batch_sizer_grows_on_low_selectivity_and_clamps() {
        let mut s = BatchSizer::new(100, true);
        assert_eq!(s.chunk(), 100);
        // 10% selectivity: after a few observations the chunk approaches
        // target / selectivity.
        for _ in 0..8 {
            let scanned = s.chunk();
            s.observe(scanned, scanned / 10);
        }
        assert!(s.chunk() >= 800, "grew towards 1000, got {}", s.chunk());
        assert!(s.chunk() <= 100 * MAX_ADAPTIVE_GROWTH);
        // Selectivity recovering to 1.0 shrinks back towards the target
        // (the EWMA converges asymptotically, so allow a small overshoot).
        for _ in 0..12 {
            let scanned = s.chunk();
            s.observe(scanned, scanned);
        }
        assert!(s.chunk() <= 102, "shrank back, got {}", s.chunk());
        assert!(!s.trace().is_empty());
    }

    #[test]
    fn batch_sizer_disabled_stays_pinned() {
        let mut s = BatchSizer::new(64, false);
        s.observe(64, 1);
        s.observe(64, 0);
        assert_eq!(s.chunk(), 64);
        assert!(s.trace().is_empty());
    }

    #[test]
    fn selectivity_floor_caps_growth() {
        let mut s = BatchSizer::new(10, true);
        for _ in 0..20 {
            let scanned = s.chunk();
            s.observe(scanned, 0);
        }
        assert_eq!(s.chunk(), 10 * MAX_ADAPTIVE_GROWTH);
    }
}
