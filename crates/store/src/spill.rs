//! Memory-governed spill-to-disk for pipeline breakers.
//!
//! The join-graph isolation of the paper exists precisely so that mature
//! relational machinery — *including external-memory algorithms* — can
//! carry XQuery evaluation; this module supplies that machinery for the
//! two genuine pipeline breakers of the executor: the duplicate-eliminating
//! SORT plan tail and the hash-join build side.
//!
//! Three pieces compose:
//!
//! * [`MemBudget`] — a lock-free accountant shared by the coordinator and
//!   every morsel worker of one execution.  Operators `try_reserve` before
//!   they grow a buffer; a failed reservation is the signal to spill.  A
//!   budget of `None` never fails (the in-memory fast paths stay
//!   byte-identical to the pre-spill executor).
//! * Run files — temp files holding length-prefixed records of a compact
//!   row codec for [`Value`] rows ([`encode_row`] / [`decode_row`]) or
//!   fixed-width `(hash, rid)` pairs for hash partitions.  Every file is
//!   deleted when its handle drops, so aborted executions leave no litter.
//! * [`ExternalSorter`] — bounded in-memory run generation plus a
//!   [`LoserTree`] k-way merge that reproduces the exact row order of the
//!   in-memory stable sort (records carry their input sequence number, so
//!   `(key, seq)` ordering *is* stable sort order), and
//!   [`GraceBuilder`] / [`SpilledPartitions`] — hash partitioning of a
//!   build side to disk with recursive repartitioning of skewed
//!   partitions.
//!
//! Spill decisions on the coordinator (build sides, the SORT tail) depend
//! only on the row stream and the budget — never on the degree of
//! parallelism — which keeps the `spill_runs` / `spill_bytes` /
//! `partitions` EXPLAIN actuals byte-identical across DOP, morsel size and
//! the vectorized/scalar switch, exactly like the other counters.
//!
//! Every disk interaction in this module is *fallible and checksummed*:
//! I/O errors, short writes and corrupt records surface as
//! [`ExecError`]s instead of panics, transient write failures retry with
//! bounded backoff ([`DEFAULT_SPILL_RETRIES`]), and the named
//! [`crate::fault`] sites let tests inject each failure deterministically.
//! Sort-run records carry a per-record XXH32 checksum, partition files a
//! streaming footer checksum, so bit rot is detected — with file and
//! offset — the moment a record is read back.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::{ExecError, Interrupt};
use crate::fault::{self, FaultKind};
use crate::table::Row;
use crate::value::Value;
use std::cmp::Ordering;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;

/// Default number of retry attempts for a transient spill-write failure
/// (`XQJG_SPILL_RETRIES` overrides per execution).
pub const DEFAULT_SPILL_RETRIES: usize = 2;

/// Bounded exponential backoff between spill-write retry attempts
/// (1 ms, 2 ms, 4 ms, … capped at 20 ms — long enough to ride out a
/// transient hiccup, short enough to stay invisible in tests).
fn backoff(attempt: usize) {
    let ms = (1u64 << (attempt.min(5) as u32 - 1)).min(20);
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

// ---------------------------------------------------------------------
// Memory budget.
// ---------------------------------------------------------------------

/// A memory accountant shared across the workers of one execution.
///
/// Reservations are approximate footprints (see [`row_footprint`]) — the
/// governor bounds the dominant buffers (sort runs, hash builds, loaded
/// probe partitions), not every allocation of the process.  `try_reserve`
/// either books the whole request or nothing; [`MemBudget::reserve_force`]
/// books unconditionally (used when an operator must make progress, e.g. a
/// single probe partition larger than what is left) and the overshoot is
/// visible in [`MemBudget::peak`].
///
/// Reservations come in two classes.  *Durable* reservations
/// ([`MemBudget::try_reserve`] / [`MemBudget::reserve_force`]) are made on
/// the coordinator in a deterministic order — build sides, the dedup set,
/// sorter buffers — and are the only ones a pipeline breaker's spill
/// decision may observe: spill counters are EXPLAIN actuals and must not
/// depend on worker timing.  *Transient* reservations
/// ([`MemBudget::try_reserve_transient`]) are worker-side caches whose
/// lifetime depends on scheduling (loaded probe partitions); they count
/// toward the limit for their own admission/eviction checks and toward
/// [`MemBudget::peak`], but stay invisible to durable admission.
#[derive(Debug)]
pub struct MemBudget {
    limit: Option<usize>,
    used: AtomicUsize,
    transient: AtomicUsize,
    peak: AtomicUsize,
}

impl MemBudget {
    /// An accountant with the given byte limit (`None` = unlimited).
    pub fn new(limit: Option<usize>) -> Arc<MemBudget> {
        Arc::new(MemBudget {
            limit,
            used: AtomicUsize::new(0),
            transient: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
        })
    }

    /// The configured limit in bytes, if any.
    pub fn limit(&self) -> Option<usize> {
        self.limit
    }

    /// Bytes currently reserved (durable and transient).
    pub fn used(&self) -> usize {
        self.used.load(AtOrd::Relaxed) + self.transient.load(AtOrd::Relaxed)
    }

    /// High-water mark of reserved bytes (including forced overshoot).
    pub fn peak(&self) -> usize {
        self.peak.load(AtOrd::Relaxed)
    }

    /// Try to reserve `bytes`; returns whether the reservation was booked.
    /// Unlimited budgets always succeed.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let Some(limit) = self.limit else {
            self.bump(bytes);
            return true;
        };
        let mut cur = self.used.load(AtOrd::Relaxed);
        loop {
            if cur.saturating_add(bytes) > limit {
                return false;
            }
            match self
                .used
                .compare_exchange_weak(cur, cur + bytes, AtOrd::Relaxed, AtOrd::Relaxed)
            {
                Ok(_) => {
                    self.track_peak(cur + bytes);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Reserve `bytes` unconditionally (progress guarantee): the booking
    /// may push `used` past the limit, which shows up in [`MemBudget::peak`].
    pub fn reserve_force(&self, bytes: usize) {
        self.bump(bytes);
    }

    /// Return a previous reservation.
    pub fn release(&self, bytes: usize) {
        let prev = self.used.fetch_sub(bytes, AtOrd::Relaxed);
        debug_assert!(prev >= bytes, "releasing more than was reserved");
    }

    /// Try to book `bytes` as a transient (worker-side) reservation.  The
    /// admission check sees the whole occupancy — durable plus transient —
    /// so worker caches still compete for the same allowance, but the
    /// booking itself never influences a durable [`Self::try_reserve`].
    pub fn try_reserve_transient(&self, bytes: usize) -> bool {
        let Some(limit) = self.limit else {
            self.bump_transient(bytes);
            return true;
        };
        let durable = self.used.load(AtOrd::Relaxed);
        let mut cur = self.transient.load(AtOrd::Relaxed);
        loop {
            if durable.saturating_add(cur).saturating_add(bytes) > limit {
                return false;
            }
            match self.transient.compare_exchange_weak(
                cur,
                cur + bytes,
                AtOrd::Relaxed,
                AtOrd::Relaxed,
            ) {
                Ok(_) => {
                    self.track_peak(durable + cur + bytes);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Book `bytes` transiently and unconditionally (progress guarantee
    /// for a single cache entry larger than what is left).
    pub fn reserve_transient_force(&self, bytes: usize) {
        self.bump_transient(bytes);
    }

    /// Return a previous transient reservation.
    pub fn release_transient(&self, bytes: usize) {
        let prev = self.transient.fetch_sub(bytes, AtOrd::Relaxed);
        debug_assert!(prev >= bytes, "releasing more than was reserved");
    }

    fn bump(&self, bytes: usize) {
        let now = self.used.fetch_add(bytes, AtOrd::Relaxed) + bytes;
        self.track_peak(now + self.transient.load(AtOrd::Relaxed));
    }

    fn bump_transient(&self, bytes: usize) {
        let now = self.transient.fetch_add(bytes, AtOrd::Relaxed) + bytes;
        self.track_peak(now + self.used.load(AtOrd::Relaxed));
    }

    fn track_peak(&self, now: usize) {
        let mut peak = self.peak.load(AtOrd::Relaxed);
        while now > peak {
            match self
                .peak
                .compare_exchange_weak(peak, now, AtOrd::Relaxed, AtOrd::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => peak = seen,
            }
        }
    }
}

/// Approximate in-memory footprint of one owned [`Row`]: vector header,
/// one [`Value`] slot per column, plus string heap payloads.  Deliberately
/// deterministic (no allocator introspection) so spill decisions — and with
/// them the spill counters — are reproducible across runs and DOP.
pub fn row_footprint(row: &[Value]) -> usize {
    const VEC_HEADER: usize = 24;
    let heap: usize = row
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.len(),
            _ => 0,
        })
        .sum();
    VEC_HEADER + std::mem::size_of_val(row) + heap
}

// ---------------------------------------------------------------------
// Temp files.
// ---------------------------------------------------------------------

/// Monotonic discriminator for spill file names within the process.
static SPILL_SEQ: AtomicU64 = AtomicU64::new(0);

/// A spill file that unlinks itself when dropped.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
}

impl SpillFile {
    /// Create a fresh, uniquely named spill file under `dir` (the
    /// directory is created if missing).
    pub fn create(dir: &Path, tag: &str) -> io::Result<(SpillFile, File)> {
        std::fs::create_dir_all(dir)?;
        let n = SPILL_SEQ.fetch_add(1, AtOrd::Relaxed);
        let path = dir.join(format!("xqjg-spill-{}-{tag}-{n}.run", std::process::id()));
        let file = File::create(&path)?;
        Ok((SpillFile { path }, file))
    }

    /// The file's path (for re-opening readers).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Open the file for reading.
    pub fn open(&self) -> io::Result<File> {
        File::open(&self.path)
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// The directory spill files go to: the configured override or the
/// system temp directory.
pub fn spill_dir(configured: Option<&Path>) -> PathBuf {
    configured
        .map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir)
}

// ---------------------------------------------------------------------
// Checksums (XXH32, seed 0).
// ---------------------------------------------------------------------

const XXH_P1: u32 = 0x9E37_79B1;
const XXH_P2: u32 = 0x85EB_CA77;
const XXH_P3: u32 = 0xC2B2_AE3D;
const XXH_P4: u32 = 0x27D4_EB2F;
const XXH_P5: u32 = 0x1656_67B1;

#[inline]
fn xxh_round(acc: u32, input: u32) -> u32 {
    acc.wrapping_add(input.wrapping_mul(XXH_P2))
        .rotate_left(13)
        .wrapping_mul(XXH_P1)
}

#[inline]
fn xxh_read_u32(b: &[u8], pos: usize) -> u32 {
    u32::from_le_bytes([b[pos], b[pos + 1], b[pos + 2], b[pos + 3]])
}

#[inline]
fn xxh_avalanche(mut h: u32) -> u32 {
    h ^= h >> 15;
    h = h.wrapping_mul(XXH_P2);
    h ^= h >> 13;
    h = h.wrapping_mul(XXH_P3);
    h ^= h >> 16;
    h
}

/// One-shot XXH32 (seed 0) over a byte slice — the per-record checksum of
/// the sort-run format.  Self-contained (no new dependency) and
/// bit-compatible with the reference xxHash32, so run files stay
/// inspectable with standard tooling.
pub fn record_checksum(data: &[u8]) -> u32 {
    let len = data.len();
    let mut pos = 0usize;
    let mut h: u32 = if len >= 16 {
        let mut v1 = XXH_P1.wrapping_add(XXH_P2);
        let mut v2 = XXH_P2;
        let mut v3 = 0u32;
        let mut v4 = 0u32.wrapping_sub(XXH_P1);
        while pos + 16 <= len {
            v1 = xxh_round(v1, xxh_read_u32(data, pos));
            v2 = xxh_round(v2, xxh_read_u32(data, pos + 4));
            v3 = xxh_round(v3, xxh_read_u32(data, pos + 8));
            v4 = xxh_round(v4, xxh_read_u32(data, pos + 12));
            pos += 16;
        }
        v1.rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18))
    } else {
        XXH_P5
    };
    h = h.wrapping_add(len as u32);
    while pos + 4 <= len {
        h = h.wrapping_add(xxh_read_u32(data, pos).wrapping_mul(XXH_P3));
        h = h.rotate_left(17).wrapping_mul(XXH_P4);
        pos += 4;
    }
    while pos < len {
        h = h.wrapping_add(u32::from(data[pos]).wrapping_mul(XXH_P5));
        h = h.rotate_left(11).wrapping_mul(XXH_P1);
        pos += 1;
    }
    xxh_avalanche(h)
}

/// Streaming XXH32 over whole 16-byte stripes — partition files append
/// fixed 16-byte `(hash, rid)` entries, so the writer folds each entry
/// into this state as it goes and [`Xxh32Stripes::finish`] matches
/// [`record_checksum`] over the concatenated entries exactly.
#[derive(Debug, Clone)]
struct Xxh32Stripes {
    v1: u32,
    v2: u32,
    v3: u32,
    v4: u32,
    len: u64,
}

impl Xxh32Stripes {
    fn new() -> Xxh32Stripes {
        Xxh32Stripes {
            v1: XXH_P1.wrapping_add(XXH_P2),
            v2: XXH_P2,
            v3: 0,
            v4: 0u32.wrapping_sub(XXH_P1),
            len: 0,
        }
    }

    fn update16(&mut self, b: &[u8; 16]) {
        self.v1 = xxh_round(self.v1, xxh_read_u32(b, 0));
        self.v2 = xxh_round(self.v2, xxh_read_u32(b, 4));
        self.v3 = xxh_round(self.v3, xxh_read_u32(b, 8));
        self.v4 = xxh_round(self.v4, xxh_read_u32(b, 12));
        self.len += 16;
    }

    fn finish(&self) -> u32 {
        let mut h: u32 = if self.len >= 16 {
            self.v1
                .rotate_left(1)
                .wrapping_add(self.v2.rotate_left(7))
                .wrapping_add(self.v3.rotate_left(12))
                .wrapping_add(self.v4.rotate_left(18))
        } else {
            XXH_P5
        };
        h = h.wrapping_add(self.len as u32);
        xxh_avalanche(h)
    }
}

// ---------------------------------------------------------------------
// Row codec.
// ---------------------------------------------------------------------

const TAG_NULL: u8 = 0;
const TAG_BOOL_FALSE: u8 = 1;
const TAG_BOOL_TRUE: u8 = 2;
const TAG_INT: u8 = 3;
const TAG_DEC: u8 = 4;
const TAG_STR: u8 = 5;

/// Append the compact encoding of one value to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_BOOL_FALSE),
        Value::Bool(true) => out.push(TAG_BOOL_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Dec(d) => {
            out.push(TAG_DEC);
            out.extend_from_slice(&d.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Append the compact encoding of one row (column count + values).
pub fn encode_row(row: &[Value], out: &mut Vec<u8>) {
    out.extend_from_slice(&(row.len() as u32).to_le_bytes());
    for v in row {
        encode_value(v, out);
    }
}

/// A corruption error anchored at a record-relative offset; callers with
/// file context localize it via [`ExecError::located`].
fn corrupt_at(offset: u64, detail: impl Into<String>) -> ExecError {
    ExecError::Corrupt {
        file: String::new(),
        offset,
        detail: detail.into(),
    }
}

/// Bounds-checked cursor advance: a truncated or bit-flipped length field
/// becomes a reported corruption, never an out-of-bounds panic.
fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], ExecError> {
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= buf.len())
        .ok_or_else(|| corrupt_at(*pos as u64, format!("record truncated ({n} bytes missing)")))?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

/// Fixed-width cursor advance into an owned array.
fn take_n<const N: usize>(buf: &[u8], pos: &mut usize) -> Result<[u8; N], ExecError> {
    let s = take(buf, pos, N)?;
    let mut out = [0u8; N];
    out.copy_from_slice(s);
    Ok(out)
}

/// Decode one value at `pos`, advancing the cursor.  Malformed bytes —
/// unknown tags, truncated payloads, invalid UTF-8 — are reported as
/// [`ExecError::Corrupt`] with the offending offset, not panicked on.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, ExecError> {
    let tag_pos = *pos;
    let Some(&tag) = buf.get(*pos) else {
        return Err(corrupt_at(tag_pos as u64, "missing value tag"));
    };
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_BOOL_FALSE => Ok(Value::Bool(false)),
        TAG_BOOL_TRUE => Ok(Value::Bool(true)),
        TAG_INT => Ok(Value::Int(i64::from_le_bytes(take_n::<8>(buf, pos)?))),
        TAG_DEC => Ok(Value::Dec(f64::from_le_bytes(take_n::<8>(buf, pos)?))),
        TAG_STR => {
            let len = u32::from_le_bytes(take_n::<4>(buf, pos)?) as usize;
            let bytes = take(buf, pos, len)?;
            String::from_utf8(bytes.to_vec())
                .map(Value::Str)
                .map_err(|_| corrupt_at(tag_pos as u64, "invalid utf-8 in string value"))
        }
        other => Err(corrupt_at(
            tag_pos as u64,
            format!("unknown value tag {other}"),
        )),
    }
}

/// Decode one row at `pos`, advancing the cursor.  The arity is untrusted:
/// the row grows value by value (capacity capped), so a bit-flipped count
/// fails on a missing tag instead of attempting a giant allocation.
pub fn decode_row(buf: &[u8], pos: &mut usize) -> Result<Row, ExecError> {
    let n = u32::from_le_bytes(take_n::<4>(buf, pos)?) as usize;
    let mut row = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        row.push(decode_value(buf, pos)?);
    }
    Ok(row)
}

// ---------------------------------------------------------------------
// Sort runs.
// ---------------------------------------------------------------------

/// One record of the SORT tail: the select-list row, its order key, and
/// the global input sequence number that makes `(key, seq)` ordering
/// reproduce the stable in-memory sort exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortRec {
    /// Global input position (assigned by [`ExternalSorter::push`]).
    pub seq: u64,
    /// The `ORDER BY` key row.
    pub key: Row,
    /// The select-list payload row.
    pub payload: Row,
}

impl SortRec {
    fn cmp_order(&self, other: &SortRec) -> Ordering {
        self.key.cmp(&other.key).then(self.seq.cmp(&other.seq))
    }
}

/// Which kind of run a writer produces: fresh sort runs (flushed from the
/// in-memory buffer) and cascade merge runs fail at distinct fault sites,
/// because only the former can be retried — their source data is still in
/// memory, while a merge consumes its input streams as it goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunFamily {
    Sort,
    Merge,
}

impl RunFamily {
    fn tag(self) -> &'static str {
        match self {
            RunFamily::Sort => "sort",
            RunFamily::Merge => "merge",
        }
    }

    fn create_site(self) -> &'static str {
        match self {
            RunFamily::Sort => fault::SITE_RUN_CREATE,
            RunFamily::Merge => fault::SITE_MERGE_CREATE,
        }
    }

    fn write_site(self) -> &'static str {
        match self {
            RunFamily::Sort => fault::SITE_RUN_WRITE,
            RunFamily::Merge => fault::SITE_MERGE_WRITE,
        }
    }
}

/// Sequential writer of length-prefixed, checksummed [`SortRec`]s into one
/// run file.  Record layout: `[len u32][seq u64 | key | payload][crc u32]`
/// where `crc` is [`record_checksum`] over the middle part.
struct RunWriter {
    file: SpillFile,
    out: BufWriter<File>,
    bytes: usize,
    scratch: Vec<u8>,
    family: RunFamily,
}

impl RunWriter {
    fn create(dir: &Path, family: RunFamily) -> Result<RunWriter, ExecError> {
        let site = family.create_site();
        if let Some(kind) = fault::check(site) {
            return Err(ExecError::io(site, &fault::injected_io_error(site, kind)));
        }
        let (file, handle) =
            SpillFile::create(dir, family.tag()).map_err(|e| ExecError::io(site, &e))?;
        Ok(RunWriter {
            file,
            out: BufWriter::new(handle),
            bytes: 0,
            scratch: Vec::new(),
            family,
        })
    }

    fn write(&mut self, rec: &SortRec) -> Result<(), ExecError> {
        self.scratch.clear();
        self.scratch.extend_from_slice(&rec.seq.to_le_bytes());
        encode_row(&rec.key, &mut self.scratch);
        encode_row(&rec.payload, &mut self.scratch);
        let mut crc = record_checksum(&self.scratch);
        let site = self.family.write_site();
        match fault::check(site) {
            Some(FaultKind::IoError) => {
                return Err(ExecError::io(
                    site,
                    &fault::injected_io_error(site, FaultKind::IoError),
                ));
            }
            Some(FaultKind::ShortWrite) => {
                // Half a record reaches the disk before the failure — the
                // file is now garbage and the caller must start a new one.
                let _ = self
                    .out
                    .write_all(&(self.scratch.len() as u32).to_le_bytes());
                let _ = self.out.write_all(&self.scratch[..self.scratch.len() / 2]);
                return Err(ExecError::io(
                    site,
                    &fault::injected_io_error(site, FaultKind::ShortWrite),
                ));
            }
            // Bit rot: the record lands intact but its checksum lies, so
            // the damage is only discovered on read-back.
            Some(FaultKind::Corrupt) => crc ^= 0xDEAD_BEEF,
            None => {}
        }
        self.out
            .write_all(&(self.scratch.len() as u32).to_le_bytes())
            .map_err(|e| ExecError::io(site, &e))?;
        self.out
            .write_all(&self.scratch)
            .map_err(|e| ExecError::io(site, &e))?;
        self.out
            .write_all(&crc.to_le_bytes())
            .map_err(|e| ExecError::io(site, &e))?;
        self.bytes += 4 + self.scratch.len() + 4;
        Ok(())
    }

    fn finish(mut self) -> Result<(SpillFile, usize), ExecError> {
        self.out
            .flush()
            .map_err(|e| ExecError::io(self.family.write_site(), &e))?;
        Ok((self.file, self.bytes))
    }
}

/// Streaming reader over one sorted run file: every record is re-validated
/// against its checksum, and any structural damage is reported with the
/// file path and byte offset of the record it was found in.
struct RunReader {
    file: SpillFile,
    input: BufReader<File>,
    head: Option<SortRec>,
    offset: u64,
    file_len: u64,
}

impl RunReader {
    fn open(file: SpillFile) -> Result<RunReader, ExecError> {
        let handle = file
            .open()
            .map_err(|e| ExecError::io(fault::SITE_RUN_READ, &e))?;
        let file_len = handle
            .metadata()
            .map_err(|e| ExecError::io(fault::SITE_RUN_READ, &e))?
            .len();
        let mut r = RunReader {
            file,
            input: BufReader::new(handle),
            head: None,
            offset: 0,
            file_len,
        };
        r.advance()?;
        Ok(r)
    }

    fn corrupt(&self, offset: u64, detail: &str) -> ExecError {
        ExecError::Corrupt {
            file: self.file.path().display().to_string(),
            offset,
            detail: detail.into(),
        }
    }

    fn advance(&mut self) -> Result<(), ExecError> {
        let rec_start = self.offset;
        let mut len_buf = [0u8; 4];
        match self.input.read_exact(&mut len_buf) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => {
                self.head = None;
                return Ok(());
            }
            Err(e) => return Err(ExecError::io(fault::SITE_RUN_READ, &e)),
        }
        let len = u32::from_le_bytes(len_buf) as u64;
        // Validate the untrusted length against the file before allocating
        // or reading: a flipped length bit must not turn into a huge
        // allocation or a confusing short read.
        if rec_start + 4 + len + 4 > self.file_len {
            return Err(self.corrupt(rec_start, "truncated record"));
        }
        let mut buf = vec![0u8; len as usize];
        self.input
            .read_exact(&mut buf)
            .map_err(|e| ExecError::io(fault::SITE_RUN_READ, &e))?;
        let mut crc_buf = [0u8; 4];
        self.input
            .read_exact(&mut crc_buf)
            .map_err(|e| ExecError::io(fault::SITE_RUN_READ, &e))?;
        self.offset += 4 + len + 4;
        match fault::check(fault::SITE_RUN_READ) {
            Some(FaultKind::Corrupt) => {
                if let Some(b) = buf.first_mut() {
                    *b ^= 0x40;
                }
            }
            Some(kind) => {
                return Err(ExecError::io(
                    fault::SITE_RUN_READ,
                    &fault::injected_io_error(fault::SITE_RUN_READ, kind),
                ));
            }
            None => {}
        }
        if record_checksum(&buf) != u32::from_le_bytes(crc_buf) {
            return Err(self.corrupt(rec_start, "checksum mismatch"));
        }
        let base = rec_start + 4;
        let mut pos = 0usize;
        let seq = u64::from_le_bytes(
            take_n::<8>(&buf, &mut pos).map_err(|e| e.located(self.file.path(), base))?,
        );
        let key = decode_row(&buf, &mut pos).map_err(|e| e.located(self.file.path(), base))?;
        let payload = decode_row(&buf, &mut pos).map_err(|e| e.located(self.file.path(), base))?;
        self.head = Some(SortRec { seq, key, payload });
        Ok(())
    }
}

/// A merge input: a disk run or the final (still in-memory) run.
enum RunCursor {
    Disk(RunReader),
    Mem(std::vec::IntoIter<SortRec>, Option<SortRec>),
}

impl RunCursor {
    fn head(&self) -> Option<&SortRec> {
        match self {
            RunCursor::Disk(r) => r.head.as_ref(),
            RunCursor::Mem(_, head) => head.as_ref(),
        }
    }

    fn pop(&mut self) -> Result<Option<SortRec>, ExecError> {
        match self {
            RunCursor::Disk(r) => {
                let head = r.head.take();
                r.advance()?;
                Ok(head)
            }
            RunCursor::Mem(iter, head) => {
                let out = head.take();
                *head = iter.next();
                Ok(out)
            }
        }
    }
}

// ---------------------------------------------------------------------
// Loser tree.
// ---------------------------------------------------------------------

/// A tournament (loser) tree over `k` ordered runs: each `pop` yields the
/// globally smallest head record and replays exactly one leaf-to-root path
/// — `O(log k)` comparisons per record instead of the `O(k)` of a naive
/// scan.  Internal node `i` stores the *loser* of the match played there;
/// the overall winner sits at the root.
pub struct LoserTree {
    /// `tree[0]` = overall winner; `tree[1..k]` = match losers.
    tree: Vec<usize>,
    k: usize,
    runs: Vec<RunCursor>,
}

impl LoserTree {
    fn new(runs: Vec<RunCursor>) -> LoserTree {
        let k = runs.len().max(1);
        let mut lt = LoserTree {
            tree: vec![usize::MAX; k.max(1)],
            k,
            runs,
        };
        if !lt.runs.is_empty() {
            let winner = lt.build(1);
            lt.tree[0] = winner;
        }
        lt
    }

    /// `a` beats `b` when its head record sorts first (exhausted runs
    /// always lose; ties — impossible for unique `seq`s — break on the
    /// run index for determinism).
    fn beats(&self, a: usize, b: usize) -> bool {
        match (self.runs[a].head(), self.runs[b].head()) {
            (Some(ra), Some(rb)) => match ra.cmp_order(rb) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Play the initial tournament below `node`, storing losers; returns
    /// the subtree winner.  Leaves live at positions `k..2k` (run `j` at
    /// `k + j`), so the shape works for any `k`, not just powers of two.
    fn build(&mut self, node: usize) -> usize {
        if node >= self.k {
            return node - self.k;
        }
        let a = self.build(2 * node);
        let b = self.build(2 * node + 1);
        let (win, lose) = if self.beats(a, b) { (a, b) } else { (b, a) };
        self.tree[node] = lose;
        win
    }

    /// Pop the smallest head record across all runs (an `Err` means a
    /// disk run failed to advance — the merge cannot continue).
    fn pop(&mut self) -> Result<Option<SortRec>, ExecError> {
        if self.runs.is_empty() {
            return Ok(None);
        }
        let winner = self.tree[0];
        let Some(rec) = self.runs[winner].pop()? else {
            return Ok(None);
        };
        // Replay the winner's path: at each node the advanced run plays
        // the stored loser; the loser stays, the winner moves up.
        let mut cur = winner;
        let mut node = (self.k + winner) / 2;
        while node >= 1 {
            let other = self.tree[node];
            if self.beats(other, cur) {
                self.tree[node] = cur;
                cur = other;
            }
            node /= 2;
        }
        self.tree[0] = cur;
        Ok(Some(rec))
    }
}

// ---------------------------------------------------------------------
// External sorter.
// ---------------------------------------------------------------------

/// Smallest buffered footprint [`ExternalSorter`] flushes as one run.
pub const MIN_RUN_BYTES: usize = 4096;

/// Upper bound on simultaneously open run files in one merge pass.  With
/// more runs than this the sorter cascades — batches of runs merge into
/// longer intermediate runs first — so file-descriptor usage stays bounded
/// no matter how far the input outgrows the budget.
pub const MAX_MERGE_FANIN: usize = 64;

/// The SORT pipeline breaker: buffers `(key, payload)` rows in memory,
/// flushes a sorted run to disk whenever the [`MemBudget`] refuses to grow
/// the buffer, and merges all runs with a [`LoserTree`] at the end.  With
/// an unlimited budget no file is ever touched and the output equals the
/// in-memory stable sort bit for bit; with any budget the output is *still*
/// identical, because records carry their input sequence number.
pub struct ExternalSorter {
    buf: Vec<SortRec>,
    reserved: usize,
    seq: u64,
    count: usize,
    last_seq: Option<u64>,
    monotonic: bool,
    typed: bool,
    budget: Arc<MemBudget>,
    dir: PathBuf,
    runs: Vec<(SpillFile, usize)>,
    retry_limit: usize,
    interrupt: Interrupt,
    /// Transient write failures that were retried (and succeeded or not).
    pub retries: usize,
    /// Sorted runs written to disk.
    pub spill_runs: usize,
    /// Bytes written to disk across all runs.
    pub spill_bytes: usize,
}

impl ExternalSorter {
    /// A sorter spilling to `dir` under `budget`.
    pub fn new(budget: Arc<MemBudget>, dir: PathBuf) -> ExternalSorter {
        ExternalSorter {
            buf: Vec::new(),
            reserved: 0,
            seq: 0,
            count: 0,
            last_seq: None,
            monotonic: true,
            typed: false,
            budget,
            dir,
            runs: Vec::new(),
            retry_limit: DEFAULT_SPILL_RETRIES,
            interrupt: Interrupt::default(),
            retries: 0,
            spill_runs: 0,
            spill_bytes: 0,
        }
    }

    /// Bound the retry attempts for a transient run-write failure
    /// (`XQJG_SPILL_RETRIES`; 0 disables retrying).
    pub fn set_retries(&mut self, limit: usize) {
        self.retry_limit = limit;
    }

    /// Attach the execution's cancellation/deadline context; it is checked
    /// once per spill run (and once at finish), keeping a cancelled query
    /// from writing gigabytes more.
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// Opt in to the columnar finish: when the sort never spilled, the seqs
    /// are monotonic and every key column is all-`Int`, [`finish`] extracts
    /// the keys into flat columns, sorts a permutation and gathers the
    /// payloads through it instead of comparing `Row`s.  Output order is
    /// identical either way; [`SortedRows::typed_rows`] reports engagement.
    ///
    /// [`finish`]: ExternalSorter::finish
    pub fn set_typed_kernels(&mut self, on: bool) {
        self.typed = on;
    }

    /// Buffer one row; may flush a run when the budget trips.
    pub fn push(&mut self, key: Row, payload: Row) -> Result<(), ExecError> {
        let s = self.seq;
        self.seq += 1;
        self.push_with_seq(s, key, payload)
    }

    /// Buffer one row under a caller-chosen sequence number (the tie-break
    /// after the key).  The two-pass DISTINCT uses this to re-sort rows
    /// under their *original* arrival seqs.  When the supplied seqs are not
    /// non-decreasing the in-memory finish falls back to a full
    /// `(key, seq)` sort (a key-only stable sort would no longer encode
    /// seq order).
    pub fn push_with_seq(&mut self, seq: u64, key: Row, payload: Row) -> Result<(), ExecError> {
        if self.last_seq.is_some_and(|p| seq < p) {
            self.monotonic = false;
        }
        self.last_seq = Some(seq);
        self.count += 1;
        let est = row_footprint(&key) + row_footprint(&payload) + std::mem::size_of::<SortRec>();
        if !self.budget.try_reserve(est) {
            // The budget is full.  Flush a run once the buffer has reached
            // a useful size; below the floor, force the booking and keep
            // buffering — otherwise a budget saturated by unspillable
            // state (a huge DISTINCT dedup set, another operator's
            // reservations, or a single oversized row) would degrade run
            // generation to one-record run files.
            if self.reserved >= self.min_run_bytes() {
                self.flush_run()?;
            }
            self.budget.reserve_force(est);
        }
        self.reserved += est;
        self.buf.push(SortRec { seq, key, payload });
        Ok(())
    }

    /// Smallest buffered footprint worth writing as a run: a quarter of
    /// the budget, floored at [`MIN_RUN_BYTES`] (the floor is what keeps
    /// run counts sane when something else saturates the budget).
    fn min_run_bytes(&self) -> usize {
        self.budget
            .limit()
            .map(|l| (l / 4).max(MIN_RUN_BYTES))
            .unwrap_or(usize::MAX)
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Has nothing been pushed yet?
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    fn flush_run(&mut self) -> Result<(), ExecError> {
        self.interrupt.check()?;
        self.buf.sort_unstable_by(SortRec::cmp_order);
        let (file, bytes) = self.write_buf_run()?;
        self.spill_runs += 1;
        self.spill_bytes += bytes;
        self.runs.push((file, bytes));
        self.buf.clear();
        self.budget.release(self.reserved);
        self.reserved = 0;
        Ok(())
    }

    /// Write the sorted buffer as one run, retrying transient failures
    /// with bounded backoff.  Retrying is safe here — and only here —
    /// because the source rows are still in memory: each attempt starts a
    /// fresh file (a failed attempt's partial file unlinks on drop).
    fn write_buf_run(&mut self) -> Result<(SpillFile, usize), ExecError> {
        let mut attempt = 0usize;
        loop {
            match Self::try_write_buf(&self.dir, &self.buf) {
                Ok(run) => return Ok(run),
                Err(e) if e.is_transient() && attempt < self.retry_limit => {
                    attempt += 1;
                    self.retries += 1;
                    backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn try_write_buf(dir: &Path, buf: &[SortRec]) -> Result<(SpillFile, usize), ExecError> {
        let mut w = RunWriter::create(dir, RunFamily::Sort)?;
        for rec in buf {
            w.write(rec)?;
        }
        w.finish()
    }

    /// Finish: sort what is buffered and merge it with any on-disk runs.
    /// The returned stream yields payload rows in `(key, seq)` order and
    /// carries the final spill counters.  An error leaves no litter: the
    /// sorter's drop releases its reservations and every run file unlinks
    /// itself.
    pub fn finish(mut self) -> Result<SortedRows, ExecError> {
        self.interrupt.check()?;
        if self.runs.is_empty() {
            if self.typed && self.monotonic {
                if let Some(rows) = self.finish_typed() {
                    return Ok(rows);
                }
            }
            if self.monotonic {
                // Pure in-memory path: seq is non-decreasing in push order,
                // so a stable sort by key alone reproduces `(key, seq)`
                // order.
                self.buf.sort_by(|a, b| a.key.cmp(&b.key));
            } else {
                self.buf.sort_by(SortRec::cmp_order);
            }
            let buf = std::mem::take(&mut self.buf);
            return Ok(SortedRows {
                spill_runs: 0,
                spill_bytes: 0,
                typed_rows: 0,
                retries: self.retries,
                source: SortedSource::Mem(buf.into_iter()),
            });
        }
        // Cascade: bound the merge fan-in (and with it the open file
        // descriptors) by pre-merging the oldest runs into longer ones.
        // The pass structure depends only on the run count, so the spill
        // counters stay deterministic.  Merge runs are NOT retried on
        // write failure: their input streams are consumed as they merge,
        // so there is nothing left to re-read for a second attempt.
        while self.runs.len() > MAX_MERGE_FANIN {
            self.interrupt.check()?;
            let batch: Vec<(SpillFile, usize)> = self.runs.drain(..MAX_MERGE_FANIN).collect();
            let cursors: Vec<RunCursor> = batch
                .into_iter()
                .map(|(file, _)| RunReader::open(file).map(RunCursor::Disk))
                .collect::<Result<_, _>>()?;
            let mut tree = LoserTree::new(cursors);
            let mut w = RunWriter::create(&self.dir, RunFamily::Merge)?;
            while let Some(rec) = tree.pop()? {
                w.write(&rec)?;
            }
            let (file, bytes) = w.finish()?;
            self.spill_runs += 1;
            self.spill_bytes += bytes;
            self.runs.push((file, bytes));
        }
        self.buf.sort_unstable_by(SortRec::cmp_order);
        let buf = std::mem::take(&mut self.buf);
        let mut cursors: Vec<RunCursor> = Vec::with_capacity(self.runs.len() + 1);
        for (file, _) in self.runs.drain(..) {
            cursors.push(RunCursor::Disk(RunReader::open(file)?));
        }
        if !buf.is_empty() {
            let mut iter = buf.into_iter();
            let head = iter.next();
            cursors.push(RunCursor::Mem(iter, head));
        }
        Ok(SortedRows {
            spill_runs: self.spill_runs,
            spill_bytes: self.spill_bytes,
            typed_rows: 0,
            retries: self.retries,
            source: SortedSource::Merge(Box::new(LoserTree::new(cursors))),
        })
    }

    /// The columnar in-memory finish: extract every key column into a flat
    /// `i64` image (NULL keys get a sentinel plus a cleared validity bit —
    /// the nullable permutation sort puts them first, exactly like
    /// `Value::cmp`), sort a permutation, gather payloads.  Bails (`None`)
    /// when the keys are empty, ragged or not `Int`/NULL — the caller
    /// falls back to the row comparator.  Only valid on the never-spilled,
    /// monotonic-seq path: the permutation sort is stable, so ties stay in
    /// buffer order, which there equals seq order.
    fn finish_typed(&mut self) -> Option<SortedRows> {
        let n = self.buf.len();
        let kw = self.buf.first().map(|r| r.key.len()).unwrap_or(0);
        if kw == 0 {
            return None;
        }
        let mut cols: Vec<Vec<i64>> = (0..kw).map(|_| Vec::with_capacity(n)).collect();
        let mut validity: Vec<Option<crate::mask::BitMask>> = (0..kw).map(|_| None).collect();
        for (i, rec) in self.buf.iter().enumerate() {
            if rec.key.len() != kw {
                return None;
            }
            for (k, v) in rec.key.iter().enumerate() {
                match v {
                    Value::Int(x) => {
                        cols[k].push(*x);
                        if let Some(m) = &mut validity[k] {
                            m.push(true);
                        }
                    }
                    Value::Null => {
                        cols[k].push(0);
                        validity[k]
                            .get_or_insert_with(|| crate::mask::BitMask::filled(i, true))
                            .push(false);
                    }
                    _ => return None,
                }
            }
        }
        let perm = if validity.iter().all(Option::is_none) {
            crate::kernel::sort_permutation_i64(&cols, n)
        } else {
            let keys: Vec<crate::kernel::SortKey<'_>> = cols
                .iter()
                .zip(&validity)
                .map(|(c, v)| crate::kernel::SortKey {
                    vals: crate::kernel::SortVals::I64(c),
                    validity: v.as_ref(),
                })
                .collect();
            crate::kernel::sort_permutation_typed(&keys, n)
        };
        let mut old: Vec<Option<SortRec>> = std::mem::take(&mut self.buf)
            .into_iter()
            .map(Some)
            .collect();
        let rows: Vec<Row> = perm
            .iter()
            .map(|&i| {
                let Some(rec) = old[i as usize].take() else {
                    unreachable!("permutation is a bijection")
                };
                rec.payload
            })
            .collect();
        Some(SortedRows {
            spill_runs: 0,
            spill_bytes: 0,
            typed_rows: n,
            retries: self.retries,
            source: SortedSource::Rows(rows.into_iter()),
        })
    }
}

impl Drop for ExternalSorter {
    fn drop(&mut self) {
        self.budget.release(self.reserved);
        self.reserved = 0;
    }
}

enum SortedSource {
    Mem(std::vec::IntoIter<SortRec>),
    Rows(std::vec::IntoIter<Row>),
    Merge(Box<LoserTree>),
}

/// The ordered output of an [`ExternalSorter`].  Iteration is fallible:
/// the merge path reads run files back, and a damaged or unreadable
/// record surfaces as an `Err` item (callers stop at the first error).
pub struct SortedRows {
    /// Runs the sorter wrote (0 on the in-memory path).
    pub spill_runs: usize,
    /// Bytes the sorter wrote.
    pub spill_bytes: usize,
    /// Rows ordered by the typed permutation-sort kernel (0 when the sort
    /// went external, the keys were not all `Int`-or-NULL, or typed
    /// kernels were never requested via
    /// [`ExternalSorter::set_typed_kernels`]).
    pub typed_rows: usize,
    /// Transient write failures the sorter retried while producing this
    /// output (the `retries=` EXPLAIN actual).
    pub retries: usize,
    source: SortedSource,
}

impl Iterator for SortedRows {
    type Item = Result<Row, ExecError>;

    fn next(&mut self) -> Option<Result<Row, ExecError>> {
        match &mut self.source {
            SortedSource::Mem(iter) => iter.next().map(|r| Ok(r.payload)),
            SortedSource::Rows(iter) => iter.next().map(Ok),
            SortedSource::Merge(tree) => match tree.pop() {
                Ok(Some(rec)) => Some(Ok(rec.payload)),
                Ok(None) => None,
                Err(e) => Some(Err(e)),
            },
        }
    }
}

// ---------------------------------------------------------------------
// Grace hash partitions.
// ---------------------------------------------------------------------

/// Fan-out of one partitioning pass (16 keeps the file count civil and one
/// nibble of the hash per recursion level).
pub const GRACE_FANOUT: usize = 16;

/// Recursion bound for repartitioning skewed partitions.  Four levels ×
/// four hash bits cover 16 bits of fan-out (65 536 leaves) — beyond that a
/// partition only stays fat when one key value dominates, which no amount
/// of hash splitting can fix, so the partition is loaded whole (the
/// overshoot shows in [`MemBudget::peak`]).
pub const GRACE_MAX_DEPTH: usize = 4;

/// Approximate in-memory footprint of one loaded build entry: the
/// `(hash → Vec<rid>)` bucket share (hash-map slot, bucket header
/// amortized, one `usize` rid).
pub const BUILD_ENTRY_FOOTPRINT: usize = 48;

/// Fixed on-disk width of one `(hash, rid)` partition entry.
const PART_ENTRY_BYTES: usize = 16;

/// Writer side of one partition file: fixed 16-byte `(hash, rid)` entries
/// followed by a 4-byte streaming-XXH32 footer over all entries.
///
/// Transient write failures retry in place (nothing of the failed entry
/// reached the file); a short write *poisons* the writer — bytes of
/// unknown extent are on disk, so no further entry can be appended and the
/// whole build must fail.
struct PartWriter {
    file: SpillFile,
    out: BufWriter<File>,
    entries: usize,
    crc: Xxh32Stripes,
    poisoned: bool,
    retry_limit: usize,
    retries: usize,
}

impl PartWriter {
    fn create(dir: &Path, retry_limit: usize) -> Result<PartWriter, ExecError> {
        let site = fault::SITE_PART_CREATE;
        if let Some(kind) = fault::check(site) {
            return Err(ExecError::io(site, &fault::injected_io_error(site, kind)));
        }
        let (file, handle) = SpillFile::create(dir, "part").map_err(|e| ExecError::io(site, &e))?;
        Ok(PartWriter {
            file,
            out: BufWriter::new(handle),
            entries: 0,
            crc: Xxh32Stripes::new(),
            poisoned: false,
            retry_limit,
            retries: 0,
        })
    }

    fn write(&mut self, hash: u64, rid: u64) -> Result<(), ExecError> {
        let mut rec = [0u8; PART_ENTRY_BYTES];
        rec[..8].copy_from_slice(&hash.to_le_bytes());
        rec[8..].copy_from_slice(&rid.to_le_bytes());
        let mut attempt = 0usize;
        loop {
            match self.write_attempt(&rec) {
                Ok(()) => {
                    // The checksum always covers the *intended* bytes: an
                    // injected corrupt write keeps the honest checksum, so
                    // the damage is detected on read-back.
                    self.crc.update16(&rec);
                    self.entries += 1;
                    return Ok(());
                }
                Err(e) if e.is_transient() && !self.poisoned && attempt < self.retry_limit => {
                    attempt += 1;
                    self.retries += 1;
                    backoff(attempt);
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn write_attempt(&mut self, rec: &[u8; PART_ENTRY_BYTES]) -> Result<(), ExecError> {
        let site = fault::SITE_PART_WRITE;
        match fault::check(site) {
            Some(FaultKind::IoError) => {
                return Err(ExecError::io(
                    site,
                    &fault::injected_io_error(site, FaultKind::IoError),
                ));
            }
            Some(FaultKind::ShortWrite) => {
                let _ = self.out.write_all(&rec[..8]);
                self.poisoned = true;
                return Err(ExecError::io(
                    site,
                    &fault::injected_io_error(site, FaultKind::ShortWrite),
                ));
            }
            Some(FaultKind::Corrupt) => {
                let mut bad = *rec;
                bad[0] ^= 0x40;
                return self.out.write_all(&bad).map_err(|e| {
                    self.poisoned = true;
                    ExecError::io(site, &e)
                });
            }
            None => {}
        }
        // A real write_all failure may have written a prefix — treat the
        // file as poisoned rather than risk interleaving a retried entry.
        self.out.write_all(rec).map_err(|e| {
            self.poisoned = true;
            ExecError::io(site, &e)
        })
    }

    fn finish(mut self) -> Result<(SpillFile, usize, usize), ExecError> {
        let site = fault::SITE_PART_WRITE;
        self.out
            .write_all(&self.crc.finish().to_le_bytes())
            .map_err(|e| ExecError::io(site, &e))?;
        self.out.flush().map_err(|e| ExecError::io(site, &e))?;
        Ok((self.file, self.entries, self.retries))
    }
}

/// One node of the partition tree while it is being built: a leaf file,
/// or a split into [`GRACE_FANOUT`] children addressed by the next hash
/// nibble.
enum BuildNode {
    Leaf { file: SpillFile, entries: usize },
    Split(Vec<BuildNode>),
}

/// One node of the finished partition tree: leaves are flat indices into
/// [`SpilledPartitions::leaves`], so routing a hash is `O(depth)` with no
/// tree counting on the probe hot path.
enum PartNode {
    Leaf(PartId),
    Split(Vec<PartNode>),
}

/// The hash nibble addressing partition `level`.
fn nibble(hash: u64, level: usize) -> usize {
    ((hash >> (4 * level)) & (GRACE_FANOUT as u64 - 1)) as usize
}

/// Build-time half of a Grace-style partitioned hash join: streams
/// `(hash, rid)` build entries into [`GRACE_FANOUT`] partition files.
pub struct GraceBuilder {
    dir: PathBuf,
    writers: Vec<PartWriter>,
    retry_limit: usize,
    interrupt: Interrupt,
    /// Transient write failures retried across all partition writers.
    pub retries: usize,
    /// Files written so far (grows when partitions split recursively).
    pub spill_runs: usize,
    /// Bytes written so far (rewrites during splits count — they are real
    /// I/O).
    pub spill_bytes: usize,
}

impl GraceBuilder {
    /// A builder writing partitions under `dir`.
    pub fn new(dir: PathBuf) -> Result<GraceBuilder, ExecError> {
        let writers = (0..GRACE_FANOUT)
            .map(|_| PartWriter::create(&dir, DEFAULT_SPILL_RETRIES))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(GraceBuilder {
            dir,
            writers,
            retry_limit: DEFAULT_SPILL_RETRIES,
            interrupt: Interrupt::default(),
            retries: 0,
            spill_runs: 0,
            spill_bytes: 0,
        })
    }

    /// Bound the retry attempts for transient partition-write failures.
    pub fn set_retries(&mut self, limit: usize) {
        self.retry_limit = limit;
        for w in &mut self.writers {
            w.retry_limit = limit;
        }
    }

    /// Attach the execution's cancellation/deadline context (checked once
    /// per partition file finished or split).
    pub fn set_interrupt(&mut self, interrupt: Interrupt) {
        self.interrupt = interrupt;
    }

    /// Route one build entry to its partition.
    pub fn add(&mut self, hash: u64, rid: usize) -> Result<(), ExecError> {
        self.writers[nibble(hash, 0)].write(hash, rid as u64)
    }

    /// Finish partitioning.  Partitions whose loaded footprint would
    /// exceed `load_limit` bytes are recursively repartitioned on the next
    /// hash nibble (up to [`GRACE_MAX_DEPTH`] levels).
    pub fn finish(mut self, load_limit: usize) -> Result<SpilledPartitions, ExecError> {
        let writers = std::mem::take(&mut self.writers);
        let mut roots = Vec::with_capacity(GRACE_FANOUT);
        for w in writers {
            self.interrupt.check()?;
            let (file, entries, retried) = w.finish()?;
            self.retries += retried;
            self.spill_runs += 1;
            self.spill_bytes += entries * PART_ENTRY_BYTES;
            roots.push(self.split_if_needed(BuildNode::Leaf { file, entries }, 1, load_limit)?);
        }
        // Flatten: leaves move into a flat vector (depth-first order) and
        // the tree keeps only their indices.
        let mut leaves: Vec<(SpillFile, usize)> = Vec::new();
        let nodes = roots.into_iter().map(|n| flatten(n, &mut leaves)).collect();
        Ok(SpilledPartitions {
            nodes,
            leaves,
            spill_runs: self.spill_runs,
            spill_bytes: self.spill_bytes,
            retries: self.retries,
        })
    }

    fn split_if_needed(
        &mut self,
        node: BuildNode,
        level: usize,
        load_limit: usize,
    ) -> Result<BuildNode, ExecError> {
        let BuildNode::Leaf { file, entries } = node else {
            return Ok(node);
        };
        if entries * BUILD_ENTRY_FOOTPRINT <= load_limit || level >= GRACE_MAX_DEPTH {
            return Ok(BuildNode::Leaf { file, entries });
        }
        // Repartition on the next nibble.  If everything would land in one
        // child the hash prefix is constant (duplicate-heavy key): keep
        // the leaf as-is rather than recursing forever — checked *before*
        // writing anything, so degenerate partitions cost no extra I/O
        // and the spill counters only ever count files that are kept.
        let entries_vec = read_part_entries(&file, entries)?;
        let mut counts = [0usize; GRACE_FANOUT];
        for &(h, _) in &entries_vec {
            counts[nibble(h, level)] += 1;
        }
        if counts.iter().filter(|&&n| n > 0).count() <= 1 {
            return Ok(BuildNode::Leaf { file, entries });
        }
        let mut writers = (0..GRACE_FANOUT)
            .map(|_| PartWriter::create(&self.dir, self.retry_limit))
            .collect::<Result<Vec<_>, _>>()?;
        for &(h, rid) in &entries_vec {
            writers[nibble(h, level)].write(h, rid)?;
        }
        drop(file);
        let mut children = Vec::with_capacity(GRACE_FANOUT);
        for w in writers {
            self.interrupt.check()?;
            let (file, entries, retried) = w.finish()?;
            self.retries += retried;
            self.spill_runs += 1;
            self.spill_bytes += entries * PART_ENTRY_BYTES;
            children.push(self.split_if_needed(
                BuildNode::Leaf { file, entries },
                level + 1,
                load_limit,
            )?);
        }
        Ok(BuildNode::Split(children))
    }
}

fn flatten(node: BuildNode, leaves: &mut Vec<(SpillFile, usize)>) -> PartNode {
    match node {
        BuildNode::Leaf { file, entries } => {
            leaves.push((file, entries));
            PartNode::Leaf(leaves.len() - 1)
        }
        BuildNode::Split(children) => {
            PartNode::Split(children.into_iter().map(|c| flatten(c, leaves)).collect())
        }
    }
}

fn read_part_entries(file: &SpillFile, entries: usize) -> Result<Vec<(u64, u64)>, ExecError> {
    let site = fault::SITE_PART_READ;
    let injected = fault::check(site);
    if let Some(kind @ (FaultKind::IoError | FaultKind::ShortWrite)) = injected {
        return Err(ExecError::io(site, &fault::injected_io_error(site, kind)));
    }
    let corrupt_injected = matches!(injected, Some(FaultKind::Corrupt));
    let handle = file.open().map_err(|e| ExecError::io(site, &e))?;
    let mut input = BufReader::new(handle);
    let mut out = Vec::with_capacity(entries.min(1 << 20));
    let mut crc = Xxh32Stripes::new();
    let mut buf = [0u8; PART_ENTRY_BYTES];
    let corrupt = |offset: u64, detail: &str| ExecError::Corrupt {
        file: file.path().display().to_string(),
        offset,
        detail: detail.into(),
    };
    for i in 0..entries {
        input.read_exact(&mut buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt((i * PART_ENTRY_BYTES) as u64, "truncated partition file")
            } else {
                ExecError::io(site, &e)
            }
        })?;
        if corrupt_injected && i == 0 {
            buf[0] ^= 0x40;
        }
        crc.update16(&buf);
        let mut h8 = [0u8; 8];
        let mut r8 = [0u8; 8];
        h8.copy_from_slice(&buf[..8]);
        r8.copy_from_slice(&buf[8..]);
        out.push((u64::from_le_bytes(h8), u64::from_le_bytes(r8)));
    }
    let mut footer = [0u8; 4];
    input.read_exact(&mut footer).map_err(|_| {
        corrupt(
            (entries * PART_ENTRY_BYTES) as u64,
            "missing checksum footer",
        )
    })?;
    let mut stored = u32::from_le_bytes(footer);
    if corrupt_injected && entries == 0 {
        stored ^= 1;
    }
    if crc.finish() != stored {
        return Err(corrupt(0, "partition checksum mismatch"));
    }
    Ok(out)
}

/// The probe-time half of the Grace join: an immutable tree of partition
/// files.  Workers address a partition by hash ([`SpilledPartitions::partition_of`]),
/// load it into a transient bucket table ([`SpilledPartitions::load`]) and
/// probe that — each worker keeps its own small partition cache, so the
/// shared structure needs no locks.
pub struct SpilledPartitions {
    nodes: Vec<PartNode>,
    leaves: Vec<(SpillFile, usize)>,
    /// Partition files written while building (splits included).
    pub spill_runs: usize,
    /// Bytes written while building.
    pub spill_bytes: usize,
    /// Transient write failures retried while building.
    pub retries: usize,
}

/// A leaf partition id: the flat index assigned by depth-first order.
pub type PartId = usize;

impl SpilledPartitions {
    /// Number of leaf partitions (the `partitions` EXPLAIN actual).
    pub fn partitions(&self) -> usize {
        self.leaves.len()
    }

    /// The leaf partition a hash routes to (`O(depth)`).
    pub fn partition_of(&self, hash: u64) -> PartId {
        let mut nodes = &self.nodes;
        let mut level = 0usize;
        loop {
            match &nodes[nibble(hash, level)] {
                PartNode::Leaf(id) => return *id,
                PartNode::Split(children) => {
                    nodes = children;
                    level += 1;
                }
            }
        }
    }

    /// Estimated footprint of the partition's loaded bucket table.
    pub fn load_footprint(&self, id: PartId) -> usize {
        self.leaves[id].1 * BUILD_ENTRY_FOOTPRINT
    }

    /// Load a partition into a `hash → rids` bucket table.
    pub fn load(
        &self,
        id: PartId,
    ) -> Result<std::collections::HashMap<u64, Vec<usize>>, ExecError> {
        let (file, entries) = &self.leaves[id];
        let mut buckets: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (h, rid) in read_part_entries(file, *entries)? {
            buckets.entry(h).or_default().push(rid as usize);
        }
        Ok(buckets)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::error::CancelToken;
    use crate::fault::{FaultPlan, Trigger};
    use std::sync::Mutex;

    fn tmp() -> PathBuf {
        std::env::temp_dir().join("xqjg-spill-tests")
    }

    /// Serializes every test that performs spill I/O: fault arming is
    /// process-global, so a test running with a `FaultGuard` installed
    /// must not overlap with another test's innocent spill writes.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn io_lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn budget_reserve_release_and_peak() {
        let b = MemBudget::new(Some(100));
        assert!(b.try_reserve(60));
        assert!(!b.try_reserve(60));
        assert!(b.try_reserve(40));
        assert_eq!(b.used(), 100);
        b.release(60);
        assert_eq!(b.used(), 40);
        b.reserve_force(200);
        assert_eq!(b.used(), 240);
        assert_eq!(b.peak(), 240);
        b.release(240);
        assert_eq!(b.used(), 0);
        let unlimited = MemBudget::new(None);
        assert!(unlimited.try_reserve(usize::MAX / 2));
    }

    #[test]
    fn codec_roundtrips_every_value_shape() {
        let row: Row = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-42),
            Value::Dec(2.75),
            Value::str("höhe"),
            Value::str(""),
        ];
        let mut buf = Vec::new();
        encode_row(&row, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_row(&buf, &mut pos).unwrap(), row);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn malformed_bytes_decode_to_corrupt_errors_not_panics() {
        // Unknown tag.
        let mut pos = 0;
        let buf = [1u8, 0, 0, 0, 0xEE];
        assert!(matches!(
            decode_row(&buf, &mut pos),
            Err(ExecError::Corrupt { .. })
        ));
        // Truncated payload after an Int tag.
        let mut pos = 0;
        let buf = [1u8, 0, 0, 0, TAG_INT, 1, 2];
        assert!(matches!(
            decode_row(&buf, &mut pos),
            Err(ExecError::Corrupt { .. })
        ));
        // Absurd arity fails on a missing tag instead of allocating.
        let mut pos = 0;
        let buf = [0xFF, 0xFF, 0xFF, 0xFF];
        assert!(matches!(
            decode_row(&buf, &mut pos),
            Err(ExecError::Corrupt { .. })
        ));
        // Invalid UTF-8 inside a string value.
        let mut buf = Vec::new();
        encode_row(&[Value::str("ab")], &mut buf);
        let bad = buf.len() - 1;
        buf[bad] = 0xFF;
        let mut pos = 0;
        assert!(matches!(
            decode_row(&buf, &mut pos),
            Err(ExecError::Corrupt { .. })
        ));
    }

    #[test]
    fn streaming_checksum_matches_one_shot_on_stripes() {
        for stripes in [0usize, 1, 2, 10] {
            let data: Vec<u8> = (0..stripes * 16).map(|i| (i * 7 + 3) as u8).collect();
            let mut s = Xxh32Stripes::new();
            for chunk in data.chunks_exact(16) {
                let mut b = [0u8; 16];
                b.copy_from_slice(chunk);
                s.update16(&b);
            }
            assert_eq!(s.finish(), record_checksum(&data), "{stripes} stripes");
        }
        // Distinct inputs hash apart (sanity, not a collision proof).
        assert_ne!(record_checksum(b"hello"), record_checksum(b"hellp"));
    }

    #[test]
    fn row_footprint_counts_string_heap() {
        let small = row_footprint(&[Value::Int(1)]);
        let with_str = row_footprint(&[Value::str("0123456789")]);
        assert!(with_str >= small + 10 - std::mem::size_of::<Value>());
        assert!(row_footprint(&[]) > 0);
    }

    fn external_sort(rows: Vec<(Row, Row)>, budget: Option<usize>) -> (Vec<Row>, usize) {
        let b = MemBudget::new(budget);
        let mut s = ExternalSorter::new(b, tmp());
        for (key, payload) in rows {
            s.push(key, payload).unwrap();
        }
        let sorted = s.finish().unwrap();
        let runs = sorted.spill_runs;
        (sorted.map(Result::unwrap).collect(), runs)
    }

    #[test]
    fn external_sort_matches_stable_in_memory_sort() {
        let _g = io_lock();
        // Duplicated keys probe the stability guarantee: payloads must come
        // out in push order within equal keys.
        let mut rows: Vec<(Row, Row)> = Vec::new();
        for i in 0..500usize {
            let key = vec![Value::Int((i % 7) as i64)];
            let payload = vec![Value::Int(i as i64), Value::str(format!("p{i}"))];
            rows.push((key, payload));
        }
        let mut expect: Vec<(Row, Row)> = rows.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        let expect: Vec<Row> = expect.into_iter().map(|(_, p)| p).collect();

        let (mem, mem_runs) = external_sort(rows.clone(), None);
        assert_eq!(mem_runs, 0);
        assert_eq!(mem, expect);

        for budget in [64, 1024, 16 * 1024] {
            let (spilled, runs) = external_sort(rows.clone(), Some(budget));
            assert!(runs > 0, "budget {budget} must force runs");
            assert_eq!(spilled, expect, "budget {budget} changed the order");
        }
    }

    #[test]
    fn typed_finish_matches_row_comparator() {
        let mut rows: Vec<(Row, Row)> = Vec::new();
        for i in 0..300usize {
            let key = vec![Value::Int((i % 7) as i64), Value::Int(-((i % 3) as i64))];
            let payload = vec![Value::Int(i as i64), Value::str(format!("p{i}"))];
            rows.push((key, payload));
        }
        let mut expect: Vec<(Row, Row)> = rows.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        let expect: Vec<Row> = expect.into_iter().map(|(_, p)| p).collect();

        let mut s = ExternalSorter::new(MemBudget::new(None), tmp());
        s.set_typed_kernels(true);
        for (key, payload) in rows.clone() {
            s.push(key, payload).unwrap();
        }
        let sorted = s.finish().unwrap();
        assert_eq!(
            sorted.typed_rows, 300,
            "all-Int keys must engage the kernel"
        );
        assert_eq!(sorted.map(Result::unwrap).collect::<Vec<Row>>(), expect);

        // A string key bails to the row comparator with identical output.
        let mut s = ExternalSorter::new(MemBudget::new(None), tmp());
        s.set_typed_kernels(true);
        for (key, payload) in rows {
            let mut key = key;
            key.push(Value::str("tail"));
            s.push(key, payload).unwrap();
        }
        let sorted = s.finish().unwrap();
        assert_eq!(
            sorted.typed_rows, 0,
            "string key must not engage the kernel"
        );
        assert_eq!(sorted.map(Result::unwrap).collect::<Vec<Row>>(), expect);
    }

    #[test]
    fn typed_finish_handles_null_keys_like_the_row_comparator() {
        // NULL sort keys take the nullable permutation path: NULLs first,
        // ties in push order — byte-identical to `Value::cmp`.
        let mut rows: Vec<(Row, Row)> = Vec::new();
        for i in 0..200usize {
            let key = vec![
                if i % 5 == 2 {
                    Value::Null
                } else {
                    Value::Int((i % 7) as i64)
                },
                Value::Int(-((i % 3) as i64)),
            ];
            rows.push((key, vec![Value::Int(i as i64)]));
        }
        let mut expect: Vec<(Row, Row)> = rows.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        let expect: Vec<Row> = expect.into_iter().map(|(_, p)| p).collect();

        let mut s = ExternalSorter::new(MemBudget::new(None), tmp());
        s.set_typed_kernels(true);
        for (key, payload) in rows {
            s.push(key, payload).unwrap();
        }
        let sorted = s.finish().unwrap();
        assert_eq!(
            sorted.typed_rows, 200,
            "NULL-bearing Int keys must still engage the kernel"
        );
        assert_eq!(sorted.map(Result::unwrap).collect::<Vec<Row>>(), expect);
    }

    #[test]
    fn explicit_seqs_control_the_tie_break() {
        // Push in reverse seq order: a key-only stable sort would keep push
        // order within equal keys; (key, seq) order must reverse it.
        let n = 50u64;
        for typed in [false, true] {
            let mut s = ExternalSorter::new(MemBudget::new(None), tmp());
            s.set_typed_kernels(typed);
            for i in 0..n {
                s.push_with_seq(n - i, vec![Value::Int(0)], vec![Value::Int(i as i64)])
                    .unwrap();
            }
            let got: Vec<Row> = s.finish().unwrap().map(Result::unwrap).collect();
            let expect: Vec<Row> = (0..n).rev().map(|i| vec![Value::Int(i as i64)]).collect();
            assert_eq!(got, expect, "typed={typed}");
        }
        // Monotonic explicit seqs (with gaps) keep the fast path valid.
        let mut s = ExternalSorter::new(MemBudget::new(None), tmp());
        s.set_typed_kernels(true);
        for i in 0..n {
            s.push_with_seq(i * 10, vec![Value::Int(0)], vec![Value::Int(i as i64)])
                .unwrap();
        }
        let sorted = s.finish().unwrap();
        assert_eq!(sorted.typed_rows, n as usize);
        let got: Vec<Row> = sorted.map(Result::unwrap).collect();
        let expect: Vec<Row> = (0..n).map(|i| vec![Value::Int(i as i64)]).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn cascaded_merge_bounds_open_runs_and_preserves_order() {
        let _g = io_lock();
        // ~7000 rows at ~80 bytes each under a 4K budget (run floor 4K)
        // produce well over MAX_MERGE_FANIN runs, forcing a cascade pass.
        let mut rows: Vec<(Row, Row)> = Vec::new();
        for i in 0..7000usize {
            rows.push((
                vec![Value::Int((i % 11) as i64)],
                vec![Value::Int(i as i64), Value::str(format!("pay-{i:06}"))],
            ));
        }
        let mut expect: Vec<(Row, Row)> = rows.clone();
        expect.sort_by(|a, b| a.0.cmp(&b.0));
        let expect: Vec<Row> = expect.into_iter().map(|(_, p)| p).collect();

        let b = MemBudget::new(Some(4096));
        let mut s = ExternalSorter::new(b, tmp());
        for (key, payload) in rows {
            s.push(key, payload).unwrap();
        }
        let sorted = s.finish().unwrap();
        assert!(
            sorted.spill_runs > MAX_MERGE_FANIN,
            "fixture too small to exercise the cascade ({} runs)",
            sorted.spill_runs
        );
        let got: Vec<Row> = sorted.map(Result::unwrap).collect();
        assert_eq!(got, expect, "cascaded merge changed the order");
    }

    #[test]
    fn saturated_budget_still_builds_useful_runs() {
        let _g = io_lock();
        // Saturate the budget with a foreign reservation, as a giant
        // DISTINCT dedup set would: the sorter must keep producing runs of
        // at least the floor size instead of one-record files.
        let b = MemBudget::new(Some(1024));
        b.reserve_force(4096);
        let mut s = ExternalSorter::new(b.clone(), tmp());
        let n = 2000usize;
        for i in 0..n {
            s.push(vec![Value::Int(i as i64)], vec![Value::Int(i as i64)])
                .unwrap();
        }
        let sorted = s.finish().unwrap();
        let per_run = n / sorted.spill_runs.max(1);
        assert!(
            per_run > 10,
            "{} runs for {n} rows — degraded to tiny runs",
            sorted.spill_runs
        );
        assert_eq!(sorted.count(), n);
        b.release(4096);
        assert_eq!(b.used(), 0);
    }

    #[test]
    fn external_sort_releases_its_reservations() {
        let _g = io_lock();
        let b = MemBudget::new(Some(512));
        {
            let mut s = ExternalSorter::new(b.clone(), tmp());
            for i in 0..100 {
                s.push(vec![Value::Int(i)], vec![Value::Int(i)]).unwrap();
            }
            let _ = s.finish().unwrap().count();
        }
        assert_eq!(b.used(), 0, "sorter must release all reservations");
    }

    #[test]
    fn loser_tree_merges_single_and_empty_runs() {
        let _g = io_lock();
        let (out, runs) = external_sort(vec![(vec![Value::Int(1)], vec![Value::Int(1)])], Some(1));
        assert_eq!(out, vec![vec![Value::Int(1)]]);
        assert!(runs <= 1);
        let (empty, _) = external_sort(Vec::new(), Some(1));
        assert!(empty.is_empty());
    }

    #[test]
    fn grace_partitions_roundtrip_all_entries() {
        let _g = io_lock();
        let mut gb = GraceBuilder::new(tmp()).unwrap();
        let entries: Vec<(u64, usize)> = (0..1000usize)
            .map(|i| (crate::hash_values([&Value::Int(i as i64)]), i))
            .collect();
        for &(h, rid) in &entries {
            gb.add(h, rid).unwrap();
        }
        let parts = gb.finish(usize::MAX).unwrap();
        assert_eq!(parts.partitions(), GRACE_FANOUT);
        assert!(parts.spill_runs >= GRACE_FANOUT);
        assert!(parts.spill_bytes >= entries.len() * 16);
        for &(h, rid) in &entries {
            let pid = parts.partition_of(h);
            let buckets = parts.load(pid).unwrap();
            assert!(
                buckets.get(&h).is_some_and(|rids| rids.contains(&rid)),
                "entry ({h}, {rid}) lost in partition {pid}"
            );
        }
    }

    #[test]
    fn skewed_partitions_split_recursively() {
        let _g = io_lock();
        let mut gb = GraceBuilder::new(tmp()).unwrap();
        for i in 0..2000usize {
            gb.add(crate::hash_values([&Value::Int(i as i64)]), i)
                .unwrap();
        }
        // ~125 entries land in each root partition; a load limit of 10
        // entries forces recursive splits.
        let parts = gb.finish(10 * BUILD_ENTRY_FOOTPRINT).unwrap();
        assert!(parts.partitions() > GRACE_FANOUT, "no split happened");
        // Every entry still routes to exactly the partition that holds it.
        for i in 0..2000usize {
            let h = crate::hash_values([&Value::Int(i as i64)]);
            let buckets = parts.load(parts.partition_of(h)).unwrap();
            assert!(buckets.get(&h).is_some_and(|r| r.contains(&i)));
        }
    }

    #[test]
    fn identical_hashes_do_not_split_forever() {
        let _g = io_lock();
        let mut gb = GraceBuilder::new(tmp()).unwrap();
        for i in 0..100usize {
            gb.add(0xDEAD_BEEF, i).unwrap();
        }
        let parts = gb.finish(1).unwrap();
        // The duplicate-hash partition refuses to split (degenerate), the
        // other 15 roots stay as empty leaves.
        assert_eq!(parts.partitions(), GRACE_FANOUT);
        let buckets = parts.load(parts.partition_of(0xDEAD_BEEF)).unwrap();
        assert_eq!(buckets[&0xDEAD_BEEF].len(), 100);
        // The refused split wrote nothing: the counters cover exactly the
        // root partitioning pass (checksum footers are excluded — they are
        // format overhead, not entry payload).
        assert_eq!(parts.spill_runs, GRACE_FANOUT);
        assert_eq!(parts.spill_bytes, 100 * 16);
    }

    #[test]
    fn spill_files_are_deleted_on_drop() {
        let _g = io_lock();
        let dir = tmp();
        let path = {
            let (file, mut handle) = SpillFile::create(&dir, "probe").unwrap();
            handle.write_all(b"x").unwrap();
            file.path().to_path_buf()
        };
        assert!(!path.exists(), "spill file must unlink on drop");
    }

    /// A fresh directory for one fault test, so a run-file leak is
    /// detectable as a non-empty directory afterwards.
    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = tmp().join(tag);
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn dir_entries(dir: &Path) -> usize {
        std::fs::read_dir(dir).map(|d| d.count()).unwrap_or(0)
    }

    /// ~36 runs under a 1 KiB budget — enough to exercise spill writes on
    /// every flush while staying below the cascade fan-in (so a damaged
    /// record surfaces during iteration, not inside `finish`).
    fn spilling_sorter(dir: PathBuf, budget: &Arc<MemBudget>) -> ExternalSorter {
        let mut s = ExternalSorter::new(budget.clone(), dir);
        for i in 0..1000i64 {
            s.push(vec![Value::Int(i % 13)], vec![Value::Int(i)])
                .unwrap();
        }
        s
    }

    #[test]
    fn transient_write_fault_retries_and_succeeds() {
        let _g = io_lock();
        let dir = fresh_dir("retry-ok");
        let budget = MemBudget::new(Some(1024));
        let guard =
            FaultPlan::single(fault::SITE_RUN_WRITE, Trigger::Nth(1), FaultKind::IoError).install();
        let sorted = spilling_sorter(dir.clone(), &budget).finish().unwrap();
        assert!(sorted.retries >= 1, "the injected fault must be retried");
        assert!(sorted.spill_runs > 0);
        let rows: Vec<Row> = sorted.map(Result::unwrap).collect();
        assert_eq!(rows.len(), 1000);
        drop(guard);
        assert_eq!(budget.used(), 0);
        assert_eq!(dir_entries(&dir), 0, "run files must not leak");
    }

    #[test]
    fn exhausted_retries_surface_the_injected_error() {
        let _g = io_lock();
        let dir = fresh_dir("retry-exhausted");
        let budget = MemBudget::new(Some(1024));
        let guard =
            FaultPlan::single(fault::SITE_RUN_WRITE, Trigger::Always, FaultKind::IoError).install();
        let mut s = ExternalSorter::new(budget.clone(), dir.clone());
        s.set_retries(1);
        let mut err = None;
        for i in 0..2000i64 {
            if let Err(e) = s.push(vec![Value::Int(i % 13)], vec![Value::Int(i)]) {
                err = Some(e);
                break;
            }
        }
        let err = err.expect("an always-on write fault must fail the sort");
        assert!(matches!(err, ExecError::Io { site, .. } if site == fault::SITE_RUN_WRITE));
        assert_eq!(s.retries, 1, "exactly the configured retry budget");
        drop(s);
        drop(guard);
        assert_eq!(budget.used(), 0, "drop must release all reservations");
        assert_eq!(dir_entries(&dir), 0, "failed runs must not leak");
    }

    #[test]
    fn corrupt_run_record_is_detected_on_read() {
        let _g = io_lock();
        let dir = fresh_dir("corrupt-run");
        let budget = MemBudget::new(Some(1024));
        let guard =
            FaultPlan::single(fault::SITE_RUN_WRITE, Trigger::Nth(1), FaultKind::Corrupt).install();
        // The damaged record is the first of its run, so opening the run
        // for the merge (which primes the reader's head) may surface the
        // corruption already at finish(); later records surface during
        // iteration.  Either way it must be a located checksum error.
        let first_err = match spilling_sorter(dir.clone(), &budget).finish() {
            Err(e) => Some(e),
            Ok(sorted) => sorted.filter_map(Result::err).next(),
        };
        assert!(
            matches!(
                &first_err,
                Some(ExecError::Corrupt { file, detail, .. })
                    if detail.contains("checksum") && file.contains(".run")
            ),
            "expected a located checksum failure, got {first_err:?}"
        );
        drop(guard);
        assert_eq!(budget.used(), 0);
        assert_eq!(dir_entries(&dir), 0);
    }

    #[test]
    fn partition_corruption_is_detected_on_load() {
        let _g = io_lock();
        let dir = fresh_dir("corrupt-part");
        let guard = FaultPlan::single(fault::SITE_PART_WRITE, Trigger::Nth(1), FaultKind::Corrupt)
            .install();
        let mut gb = GraceBuilder::new(dir.clone()).unwrap();
        for i in 0..100usize {
            gb.add(crate::hash_values([&Value::Int(i as i64)]), i)
                .unwrap();
        }
        let parts = gb.finish(usize::MAX).unwrap();
        let damaged = (0..parts.partitions())
            .filter_map(|pid| parts.load(pid).err())
            .next();
        assert!(
            matches!(
                &damaged,
                Some(ExecError::Corrupt { detail, .. }) if detail.contains("checksum")
            ),
            "expected a partition checksum failure, got {damaged:?}"
        );
        drop(guard);
        drop(parts);
        assert_eq!(dir_entries(&dir), 0);
    }

    #[test]
    fn cancelled_sorter_stops_and_cleans_up() {
        let _g = io_lock();
        let dir = fresh_dir("cancel");
        let budget = MemBudget::new(Some(256));
        let token = CancelToken::new();
        let mut s = ExternalSorter::new(budget.clone(), dir.clone());
        s.set_interrupt(Interrupt::new(Some(token.clone()), None));
        let mut err = None;
        for i in 0..4000i64 {
            if i == 2000 {
                token.cancel();
            }
            if let Err(e) = s.push(vec![Value::Int(i)], vec![Value::Int(i)]) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(ExecError::Cancelled));
        drop(s);
        assert_eq!(budget.used(), 0, "cancel must release all reservations");
        assert_eq!(dir_entries(&dir), 0, "cancel must delete all run files");
    }
}
