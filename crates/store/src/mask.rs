//! Packed selection / validity bitmasks.
//!
//! [`BitMask`] stores one bit per row in `u64` words — the SIMD-shaped
//! mask currency of the typed kernels.  Selection kernels *emit* masks
//! (64 verdicts materialize as one word write instead of 64 `bool`
//! stores), validity masks *gate* them (a NULL slot never matches any
//! comparison), and mask combination (AND/OR of predicate terms) is a
//! word-at-a-time loop the compiler can keep entirely in vector
//! registers.  Bits past `len` are kept zero, so popcounts and word-wise
//! folds never need a tail guard.

/// A packed bitmask over `len` rows, bit `i` of word `i / 64` being row
/// `i`'s flag.  All bits past `len` are zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitMask {
    words: Vec<u64>,
    len: usize,
}

/// Bits per mask word.
pub const MASK_WORD_BITS: usize = 64;

impl BitMask {
    /// An empty mask.
    pub fn new() -> Self {
        BitMask::default()
    }

    /// A mask of `len` bits, all set to `value`.
    pub fn filled(len: usize, value: bool) -> Self {
        let nwords = len.div_ceil(MASK_WORD_BITS);
        let mut words = vec![if value { !0u64 } else { 0u64 }; nwords];
        if value {
            Self::trim_tail(&mut words, len);
        }
        BitMask { words, len }
    }

    /// Build from an iterator of flags (tests and conversion seams).
    pub fn from_bools(flags: impl IntoIterator<Item = bool>) -> Self {
        let mut m = BitMask::new();
        for f in flags {
            m.push(f);
        }
        m
    }

    /// Reset to `len` bits, all `value` — reuses the word buffer.
    pub fn reset(&mut self, len: usize, value: bool) {
        let nwords = len.div_ceil(MASK_WORD_BITS);
        self.words.clear();
        self.words.resize(nwords, if value { !0u64 } else { 0u64 });
        self.len = len;
        if value {
            Self::trim_tail(&mut self.words, len);
        }
    }

    fn trim_tail(words: &mut [u64], len: usize) {
        let tail = len % MASK_WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the mask zero-length?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i`'s flag.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / MASK_WORD_BITS] >> (i % MASK_WORD_BITS)) & 1 != 0
    }

    /// Set row `i`'s flag.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / MASK_WORD_BITS];
        let bit = 1u64 << (i % MASK_WORD_BITS);
        if v {
            *w |= bit;
        } else {
            *w &= !bit;
        }
    }

    /// Append one flag.
    pub fn push(&mut self, v: bool) {
        if self.len.is_multiple_of(MASK_WORD_BITS) {
            self.words.push(0);
        }
        self.len += 1;
        if v {
            self.set(self.len - 1, true);
        }
    }

    /// The backing words (bits past `len` are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable word access for kernels that write whole verdict words.
    /// Callers must keep bits past `len` zero.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Are all `len` bits set?
    pub fn all_true(&self) -> bool {
        self.count_ones() == self.len
    }

    /// In-place AND with `other` (equal lengths).
    pub fn and_with(&mut self, other: &BitMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// In-place OR with `other` (equal lengths).
    pub fn or_with(&mut self, other: &BitMask) {
        debug_assert_eq!(self.len, other.len);
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Iterate the indices of set bits, ascending.  Word-at-a-time:
    /// `trailing_zeros` peels one set bit per step, so sparse masks cost
    /// proportional to their popcount, not their length.
    pub fn ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set-bit indices of a [`BitMask`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * MASK_WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_tail_bits_stay_zero() {
        let m = BitMask::filled(70, true);
        assert_eq!(m.len(), 70);
        assert_eq!(m.count_ones(), 70);
        assert!(m.all_true());
        // The 58 tail bits of the second word must be zero.
        assert_eq!(m.words()[1], (1u64 << 6) - 1);
        let z = BitMask::filled(70, false);
        assert_eq!(z.count_ones(), 0);
    }

    #[test]
    fn set_get_push_roundtrip() {
        let flags: Vec<bool> = (0..200).map(|i| i % 3 == 0).collect();
        let mut m = BitMask::from_bools(flags.iter().copied());
        for (i, &f) in flags.iter().enumerate() {
            assert_eq!(m.get(i), f, "bit {i}");
        }
        m.set(1, true);
        m.set(0, false);
        assert!(m.get(1) && !m.get(0));
    }

    #[test]
    fn and_or_combine_wordwise() {
        let a = BitMask::from_bools((0..130).map(|i| i % 2 == 0));
        let b = BitMask::from_bools((0..130).map(|i| i % 3 == 0));
        let mut and = a.clone();
        and.and_with(&b);
        let mut or = a.clone();
        or.or_with(&b);
        for i in 0..130 {
            assert_eq!(and.get(i), i % 2 == 0 && i % 3 == 0);
            assert_eq!(or.get(i), i % 2 == 0 || i % 3 == 0);
        }
    }

    #[test]
    fn ones_iterates_set_bits_ascending() {
        let flags: Vec<bool> = (0..300).map(|i| i % 7 == 1).collect();
        let m = BitMask::from_bools(flags.iter().copied());
        let got: Vec<usize> = m.ones().collect();
        let want: Vec<usize> = (0..300).filter(|i| i % 7 == 1).collect();
        assert_eq!(got, want);
        assert_eq!(m.count_ones(), want.len());
        assert!(BitMask::new().ones().next().is_none());
    }

    #[test]
    fn reset_reuses_buffer() {
        let mut m = BitMask::filled(10, true);
        m.reset(65, false);
        assert_eq!(m.len(), 65);
        assert_eq!(m.count_ones(), 0);
        m.reset(3, true);
        assert_eq!((m.len(), m.count_ones()), (3, 3));
    }
}
