//! Relational storage substrate.
//!
//! This crate is the part of the "30+ years of relational technology" the
//! paper leans on: typed scalar [`Value`]s, row [`Table`]s with named
//! [`Schema`]s, composite-key [`BPlusTree`] indexes with range scans, and
//! [`TableStats`] (cardinalities, most-common values, histograms) feeding
//! the cost-based optimizer in `xqjg-engine`.  A small [`Database`] catalog
//! ties tables, indexes and statistics together, and the [`batch`] module
//! provides the pipelined execution substrate — fixed-capacity [`Batch`]es
//! and the pull-based [`Operator`] protocol — shared by every evaluation
//! path of the system.  The [`columnar`] module is its vectorized mirror:
//! [`ColumnBatch`]es carry one rid column per bound alias plus a selection
//! vector, so filters refine indices instead of materializing survivors,
//! and the [`BatchSizer`] adapts scan chunks to measured selectivity.  The
//! [`morsel`] module layers morsel-driven parallelism on top: leaf scans
//! split into rid-range [`Morsel`]s, scoped worker threads drain a shared
//! [`MorselQueue`], and per-worker counters merge back into
//! sequential-identical [`OpStats`].  The [`spill`] module makes the
//! pipeline breakers memory-governed: a shared [`MemBudget`] accountant,
//! an [`ExternalSorter`] (sorted runs + loser-tree merge) and Grace-style
//! hash partitions ([`GraceBuilder`] / [`SpilledPartitions`]) let sorts
//! and hash builds go external when `XQJG_MEM_BUDGET` trips.  The
//! [`typed`] module adds lazily-built typed column images ([`TypedColumns`]:
//! flat `i64` columns and sorted-dictionary string columns) and [`kernel`]
//! the branch-free chunked compare/hash/sort kernels over them — the
//! representation the `XQJG_TYPED_KERNELS` hot paths run on.
//!
//! Nothing in this crate knows about XML or XQuery — it is a generic (if
//! deliberately compact) relational kernel.

pub mod admission;
pub mod batch;
pub mod btree;
pub mod cache;
pub mod catalog;
pub mod columnar;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod mask;
pub mod morsel;
pub mod schema;
pub mod spill;
pub mod stats;
pub mod table;
pub mod typed;
pub mod value;

pub use admission::{
    AdmissionConfig, AdmissionController, AdmissionPermit, AdmissionStats, DEFAULT_MAX_SESSIONS,
    DEFAULT_QUEUE_TIMEOUT,
};
pub use batch::{
    drain, fill_from_pending, fill_from_pending_with_capacity, merge_worker_stats, new_stats_sink,
    Batch, BoxedOperator, OpStats, Operator, StatsSink, VecSource, BATCH_CAPACITY,
};
pub use btree::{BPlusTree, Key};
pub use cache::{
    PostingsCache, PostingsKey, ShardedLru, CACHE_ENTRY_OVERHEAD, POSTINGS_CACHE_BYTES,
};
pub use catalog::{BuiltIndex, Database, IndexDef};
pub use columnar::{BatchSizer, ColOperator, ColumnBatch, MAX_ADAPTIVE_GROWTH};
pub use error::{CancelToken, ExecError, Interrupt};
pub use fault::{FaultGuard, FaultKind, FaultPlan, FaultSpec, Trigger};
pub use kernel::{
    agg_i64_masked, gather_i64, gather_u32, hash_keys_i64, hash_keys_typed, mask_cmp_i64,
    mask_cmp_u32, mask_const, mask_terms, sort_permutation_i64, sort_permutation_typed, HashKey,
    KernelCmp, MaskTerm, MaskedAgg, SortKey, SortVals,
};
pub use mask::{BitMask, MASK_WORD_BITS};
pub use morsel::{
    default_threads, effective_morsel_size, execute_morsels, execute_morsels_streaming,
    parse_bytes, parse_duration, partition_morsels, try_execute_morsels,
    try_execute_morsels_streaming, ConfigError, ExecConfig, Morsel, MorselQueue,
    DEFAULT_MORSEL_SIZE, EXEC_KNOBS, MIN_MORSEL_SIZE,
};
pub use schema::Schema;
pub use spill::{
    record_checksum, row_footprint, spill_dir, ExternalSorter, GraceBuilder, MemBudget, SortedRows,
    SpilledPartitions, BUILD_ENTRY_FOOTPRINT, DEFAULT_SPILL_RETRIES, GRACE_FANOUT,
};
pub use stats::{ColumnStats, TableStats};
pub use table::{Row, Table};
pub use typed::{TypedColumn, TypedColumns};
pub use value::{cmp_f64_total, hash_values, Value};
