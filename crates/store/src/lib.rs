//! Relational storage substrate.
//!
//! This crate is the part of the "30+ years of relational technology" the
//! paper leans on: typed scalar [`Value`]s, row [`Table`]s with named
//! [`Schema`]s, composite-key [`BPlusTree`] indexes with range scans, and
//! [`TableStats`] (cardinalities, most-common values, histograms) feeding
//! the cost-based optimizer in `xqjg-engine`.  A small [`Database`] catalog
//! ties tables, indexes and statistics together, and the [`batch`] module
//! provides the pipelined execution substrate — fixed-capacity [`Batch`]es
//! and the pull-based [`Operator`] protocol — shared by every evaluation
//! path of the system.
//!
//! Nothing in this crate knows about XML or XQuery — it is a generic (if
//! deliberately compact) relational kernel.

pub mod batch;
pub mod btree;
pub mod catalog;
pub mod schema;
pub mod stats;
pub mod table;
pub mod value;

pub use batch::{
    drain, fill_from_pending, new_stats_sink, Batch, BoxedOperator, OpStats, Operator, StatsSink,
    VecSource, BATCH_CAPACITY,
};
pub use btree::{BPlusTree, Key};
pub use catalog::{BuiltIndex, Database, IndexDef};
pub use schema::Schema;
pub use stats::{ColumnStats, TableStats};
pub use table::{Row, Table};
pub use value::{hash_values, Value};
