//! Branch-free chunked kernels over typed columns.
//!
//! Every kernel is a plain data-parallel loop over primitive slices —
//! comparisons produce booleans without branching in the loop body, so the
//! compiler is free to autovectorize (no `std::simd`, no intrinsics).  The
//! kernels are *exact* replacements for the scalar [`Value`] operations on
//! the column shapes [`crate::TypedColumn`] guarantees:
//!
//! * an all-`Int` column compares like `Value::cmp` restricted to
//!   integers, and hashes like [`crate::hash_values`] over `Value::Int`s
//!   (bit-for-bit — spilled-vs-resident parity depends on identical probe
//!   hashes), and
//! * a dictionary-coded string column compares by code, the dictionary
//!   being sorted.
//!
//! [`crate::Value::cmp`]'s NaN handling is irrelevant here by
//! construction: typed columns never contain `Dec` values.

use std::hash::{Hash, Hasher};

use crate::value::Value;

/// Comparison operator of the selection kernels (SQL semantics; the typed
/// columns carry no NULLs, so three-valued logic degenerates to two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Gather-and-compare kernel: for each row id in `rids`, push whether
/// `vals[rid] op rhs` holds.  One tight loop per operator — the comparison
/// is a flag materialization, not a branch.
pub fn keep_cmp_i64(vals: &[i64], rids: &[usize], op: KernelCmp, rhs: i64, keep: &mut Vec<bool>) {
    keep.clear();
    keep.reserve(rids.len());
    match op {
        KernelCmp::Eq => keep.extend(rids.iter().map(|&r| vals[r] == rhs)),
        KernelCmp::Ne => keep.extend(rids.iter().map(|&r| vals[r] != rhs)),
        KernelCmp::Lt => keep.extend(rids.iter().map(|&r| vals[r] < rhs)),
        KernelCmp::Le => keep.extend(rids.iter().map(|&r| vals[r] <= rhs)),
        KernelCmp::Gt => keep.extend(rids.iter().map(|&r| vals[r] > rhs)),
        KernelCmp::Ge => keep.extend(rids.iter().map(|&r| vals[r] >= rhs)),
    }
}

/// [`keep_cmp_i64`] over dictionary codes.  Range operators must be
/// rewritten against a dictionary boundary first (see
/// [`crate::TypedColumn::dict_boundary`]); code comparison then equals
/// string comparison because the dictionary is sorted.
pub fn keep_cmp_u32(vals: &[u32], rids: &[usize], op: KernelCmp, rhs: u32, keep: &mut Vec<bool>) {
    keep.clear();
    keep.reserve(rids.len());
    match op {
        KernelCmp::Eq => keep.extend(rids.iter().map(|&r| vals[r] == rhs)),
        KernelCmp::Ne => keep.extend(rids.iter().map(|&r| vals[r] != rhs)),
        KernelCmp::Lt => keep.extend(rids.iter().map(|&r| vals[r] < rhs)),
        KernelCmp::Le => keep.extend(rids.iter().map(|&r| vals[r] <= rhs)),
        KernelCmp::Gt => keep.extend(rids.iter().map(|&r| vals[r] > rhs)),
        KernelCmp::Ge => keep.extend(rids.iter().map(|&r| vals[r] >= rhs)),
    }
}

/// Constant-verdict kernel (a dictionary miss: `= 'absent'` keeps nothing,
/// `<> 'absent'` keeps everything).
pub fn keep_const(n: usize, verdict: bool, keep: &mut Vec<bool>) {
    keep.clear();
    keep.resize(n, verdict);
}

/// Gather kernel: `out[i] = vals[rids[i]]`.
pub fn gather_i64(vals: &[i64], rids: &[usize], out: &mut Vec<i64>) {
    out.reserve(rids.len());
    out.extend(rids.iter().map(|&r| vals[r]));
}

/// Hash kernel over column-major integer join keys (`nk` keys per row, key
/// `k` of row `i` at `keys[k * live + i]`): one hash per row, identical
/// bit-for-bit to [`crate::hash_values`] over the corresponding
/// `Value::Int`s — the kernel only skips the enum dispatch, never changes
/// the hash function, so in-memory buckets and Grace partition routing see
/// the same hashes as the scalar path.
pub fn hash_keys_i64(keys: &[i64], nk: usize, live: usize, out: &mut Vec<u64>) {
    debug_assert_eq!(keys.len(), nk * live);
    out.clear();
    out.reserve(live);
    for i in 0..live {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for k in 0..nk {
            // `Value::Int`'s Hash impl: numeric discriminant, then the
            // bits of the value's f64 image (an i64 cast never produces
            // -0.0, so no normalization is needed).
            2u8.hash(&mut h);
            (keys[k * live + i] as f64).to_bits().hash(&mut h);
        }
        out.push(h.finish());
    }
}

/// Stable permutation sort over columnar `i64` sort keys: returns the row
/// indices `0..n` ordered lexicographically by the key columns, ties in
/// input order.  This is the columnar SORT tail — keys are extracted once
/// into flat columns, the permutation is sorted (indices move, rows do
/// not), and the caller gathers payloads through it.
pub fn sort_permutation_i64(cols: &[Vec<i64>], n: usize) -> Vec<u32> {
    debug_assert!(cols.iter().all(|c| c.len() == n));
    let mut perm: Vec<u32> = (0..n as u32).collect();
    match cols {
        [] => {}
        [col] => perm.sort_by_key(|&i| col[i as usize]),
        _ => perm.sort_by(|&a, &b| {
            for col in cols {
                let ord = col[a as usize].cmp(&col[b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        }),
    }
    perm
}

/// A sort key column in permutation-sort form: either an `i64` image or
/// dictionary codes (whose order is string order).
pub enum SortKey<'a> {
    /// Integer keys.
    I64(&'a [i64]),
    /// Dictionary codes of a sorted dictionary.
    Code(&'a [u32]),
}

/// Stable permutation sort over mixed typed key columns.
pub fn sort_permutation_typed(cols: &[SortKey<'_>], n: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for col in cols {
            let ord = match col {
                SortKey::I64(v) => v[a as usize].cmp(&v[b as usize]),
                SortKey::Code(v) => v[a as usize].cmp(&v[b as usize]),
            };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    perm
}

/// Reference check used by the parity tests: does the kernel verdict for
/// `lhs op rhs` match the scalar `Value` comparison?
pub fn cmp_matches_value(op: KernelCmp, lhs: &Value, rhs: &Value) -> Option<bool> {
    let ord = lhs.sql_cmp(rhs)?;
    Some(match op {
        KernelCmp::Eq => ord == std::cmp::Ordering::Equal,
        KernelCmp::Ne => ord != std::cmp::Ordering::Equal,
        KernelCmp::Lt => ord == std::cmp::Ordering::Less,
        KernelCmp::Le => ord != std::cmp::Ordering::Greater,
        KernelCmp::Gt => ord == std::cmp::Ordering::Greater,
        KernelCmp::Ge => ord != std::cmp::Ordering::Less,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::hash_values;

    const OPS: [KernelCmp; 6] = [
        KernelCmp::Eq,
        KernelCmp::Ne,
        KernelCmp::Lt,
        KernelCmp::Le,
        KernelCmp::Gt,
        KernelCmp::Ge,
    ];

    #[test]
    fn keep_cmp_i64_matches_scalar_comparison() {
        let vals: Vec<i64> = vec![5, -3, 0, 7, 5, 100];
        let rids: Vec<usize> = vec![0, 2, 3, 4, 5];
        let mut keep = Vec::new();
        for op in OPS {
            keep_cmp_i64(&vals, &rids, op, 5, &mut keep);
            for (i, &rid) in rids.iter().enumerate() {
                let want = cmp_matches_value(op, &Value::Int(vals[rid]), &Value::Int(5)).unwrap();
                assert_eq!(keep[i], want, "{op:?} rid {rid}");
            }
        }
    }

    #[test]
    fn hash_kernel_matches_value_hashes() {
        let live = 4;
        // Column-major: key 0 = [1, -2, 0, 9], key 1 = [7, 7, 8, 8].
        let keys: Vec<i64> = vec![1, -2, 0, 9, 7, 7, 8, 8];
        let mut out = Vec::new();
        hash_keys_i64(&keys, 2, live, &mut out);
        for i in 0..live {
            let vals = [Value::Int(keys[i]), Value::Int(keys[live + i])];
            assert_eq!(out[i], hash_values(vals.iter()), "row {i}");
        }
    }

    #[test]
    fn sort_permutation_is_stable_and_lexicographic() {
        let c0: Vec<i64> = vec![2, 1, 2, 1];
        let c1: Vec<i64> = vec![9, 5, 3, 5];
        let perm = sort_permutation_i64(&[c0.clone(), c1.clone()], 4);
        assert_eq!(perm, vec![1, 3, 2, 0]);
        // Single-column specialization keeps ties in input order.
        let perm = sort_permutation_i64(&[vec![3, 1, 3, 1]], 4);
        assert_eq!(perm, vec![1, 3, 0, 2]);
        // Empty key: identity (pure seq order).
        assert_eq!(sort_permutation_i64(&[], 3), vec![0, 1, 2]);
        // Mixed typed keys sort codes like strings.
        let perm =
            sort_permutation_typed(&[SortKey::Code(&[1, 0, 1]), SortKey::I64(&[5, 9, 2])], 3);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    fn keep_const_and_gather() {
        let mut keep = Vec::new();
        keep_const(3, false, &mut keep);
        assert_eq!(keep, vec![false; 3]);
        let mut out = Vec::new();
        gather_i64(&[10, 20, 30], &[2, 0], &mut out);
        assert_eq!(out, vec![30, 10]);
    }
}
