//! Branch-free chunked kernels over typed columns.
//!
//! Every kernel is a plain data-parallel loop over primitive slices —
//! comparisons produce verdict *bits* packed into [`BitMask`] words (64
//! verdicts per word write), so the compiler is free to autovectorize the
//! chunk body (no `std::simd`, no intrinsics).  The kernels are *exact*
//! replacements for the scalar [`Value`] operations on the column shapes
//! [`crate::TypedColumn`] guarantees:
//!
//! * an all-`Int` column compares like `Value::cmp` restricted to
//!   integers, and hashes like [`crate::hash_values`] over `Value::Int`s
//!   (bit-for-bit — spilled-vs-resident parity depends on identical probe
//!   hashes),
//! * a dictionary-coded string column compares by code, the dictionary
//!   being sorted, and hashes the dictionary string exactly like
//!   `Value::Str`, and
//! * a NULL slot (cleared validity bit) never satisfies any comparison —
//!   SQL three-valued logic collapsed onto the mask — and never produces
//!   a join-key hash ([`hash_keys_typed`] emits `None`, matching the
//!   scalar path's refusal to probe on NULL keys).
//!
//! [`crate::Value::cmp`]'s NaN handling is irrelevant here by
//! construction: typed columns never contain `Dec` values.

use std::hash::{Hash, Hasher};

use crate::mask::{BitMask, MASK_WORD_BITS};
use crate::value::Value;

/// Comparison operator of the selection kernels (SQL semantics; NULL
/// slots are masked out by the validity word, so three-valued logic
/// degenerates to two on the remaining rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCmp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One term of a fused selection pass: a comparison over a typed column
/// image (optionally NULL-gated), a bare validity gate, or a constant
/// verdict.  [`mask_terms`] evaluates a conjunction or disjunction of
/// terms chunk-at-a-time, so a three-term residual costs one pass over
/// the gathered rids instead of three selection-vector rewrites.
#[derive(Clone, Copy)]
pub enum MaskTerm<'a> {
    /// `i64` column `op` integer constant.
    I64 {
        /// The column image.
        vals: &'a [i64],
        /// NULL gate: a cleared bit fails the term.
        validity: Option<&'a BitMask>,
        /// Comparison operator.
        op: KernelCmp,
        /// Right-hand constant.
        rhs: i64,
    },
    /// Dictionary codes `op` code constant (range operators must be
    /// boundary-rewritten first, see [`crate::TypedColumn::dict_boundary`]).
    Code {
        /// The code image.
        vals: &'a [u32],
        /// NULL gate: a cleared bit fails the term.
        validity: Option<&'a BitMask>,
        /// Comparison operator.
        op: KernelCmp,
        /// Right-hand code (or boundary).
        rhs: u32,
    },
    /// The term holds exactly on the valid (non-NULL) rows — a
    /// constant-true verdict over a NULL-bearing column (`<> 'absent'`).
    Valid {
        /// The column's validity mask.
        validity: &'a BitMask,
    },
    /// The term is constant over the whole column.
    Const(bool),
}

/// Pack one chunk's verdicts into a word: bit `b` is `f(vals[chunk[b]])`.
#[inline]
fn fold_word<T: Copy>(vals: &[T], chunk: &[usize], f: impl Fn(T) -> bool) -> u64 {
    chunk
        .iter()
        .enumerate()
        .fold(0u64, |w, (b, &r)| w | ((f(vals[r]) as u64) << b))
}

/// Gather one chunk's validity bits into a word (branch-free bit gather).
#[inline]
fn valid_word(validity: &BitMask, chunk: &[usize]) -> u64 {
    let words = validity.words();
    chunk.iter().enumerate().fold(0u64, |w, (b, &r)| {
        w | (((words[r / MASK_WORD_BITS] >> (r % MASK_WORD_BITS)) & 1) << b)
    })
}

#[inline]
fn cmp_word_i64(vals: &[i64], chunk: &[usize], op: KernelCmp, rhs: i64) -> u64 {
    match op {
        KernelCmp::Eq => fold_word(vals, chunk, |v| v == rhs),
        KernelCmp::Ne => fold_word(vals, chunk, |v| v != rhs),
        KernelCmp::Lt => fold_word(vals, chunk, |v| v < rhs),
        KernelCmp::Le => fold_word(vals, chunk, |v| v <= rhs),
        KernelCmp::Gt => fold_word(vals, chunk, |v| v > rhs),
        KernelCmp::Ge => fold_word(vals, chunk, |v| v >= rhs),
    }
}

#[inline]
fn cmp_word_u32(vals: &[u32], chunk: &[usize], op: KernelCmp, rhs: u32) -> u64 {
    match op {
        KernelCmp::Eq => fold_word(vals, chunk, |v| v == rhs),
        KernelCmp::Ne => fold_word(vals, chunk, |v| v != rhs),
        KernelCmp::Lt => fold_word(vals, chunk, |v| v < rhs),
        KernelCmp::Le => fold_word(vals, chunk, |v| v <= rhs),
        KernelCmp::Gt => fold_word(vals, chunk, |v| v > rhs),
        KernelCmp::Ge => fold_word(vals, chunk, |v| v >= rhs),
    }
}

#[inline]
fn term_word(term: &MaskTerm<'_>, chunk: &[usize], full: u64) -> u64 {
    match term {
        MaskTerm::I64 {
            vals,
            validity,
            op,
            rhs,
        } => {
            let mut w = cmp_word_i64(vals, chunk, *op, *rhs);
            if let Some(v) = validity {
                w &= valid_word(v, chunk);
            }
            w
        }
        MaskTerm::Code {
            vals,
            validity,
            op,
            rhs,
        } => {
            let mut w = cmp_word_u32(vals, chunk, *op, *rhs);
            if let Some(v) = validity {
                w &= valid_word(v, chunk);
            }
            w
        }
        MaskTerm::Valid { validity } => valid_word(validity, chunk),
        MaskTerm::Const(true) => full,
        MaskTerm::Const(false) => 0,
    }
}

/// Fused multi-term selection kernel: evaluate every term over the rows
/// named by `rids` and combine the verdicts (`conjunctive`: AND, else OR)
/// into `out`, one 64-row chunk at a time.  The chunk's rids stay hot
/// across terms, so an N-term predicate costs one gather pass, not N
/// selection rewrites.  An empty conjunction keeps everything; an empty
/// disjunction keeps nothing.
pub fn mask_terms(terms: &[MaskTerm<'_>], conjunctive: bool, rids: &[usize], out: &mut BitMask) {
    out.reset(rids.len(), false);
    let words = out.words_mut();
    for (wi, chunk) in rids.chunks(MASK_WORD_BITS).enumerate() {
        let full = if chunk.len() == MASK_WORD_BITS {
            !0u64
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut acc = if conjunctive { full } else { 0u64 };
        for t in terms {
            let w = term_word(t, chunk, full);
            if conjunctive {
                acc &= w;
            } else {
                acc |= w;
            }
        }
        words[wi] = acc & full;
    }
}

/// Single-term gather-and-compare kernel over an `i64` image: bit `i` of
/// `out` is `vals[rids[i]] op rhs` (and the slot is valid).
pub fn mask_cmp_i64(
    vals: &[i64],
    validity: Option<&BitMask>,
    rids: &[usize],
    op: KernelCmp,
    rhs: i64,
    out: &mut BitMask,
) {
    mask_terms(
        &[MaskTerm::I64 {
            vals,
            validity,
            op,
            rhs,
        }],
        true,
        rids,
        out,
    );
}

/// [`mask_cmp_i64`] over dictionary codes.  Range operators must be
/// rewritten against a dictionary boundary first (see
/// [`crate::TypedColumn::dict_boundary`]); code comparison then equals
/// string comparison because the dictionary is sorted.
pub fn mask_cmp_u32(
    vals: &[u32],
    validity: Option<&BitMask>,
    rids: &[usize],
    op: KernelCmp,
    rhs: u32,
    out: &mut BitMask,
) {
    mask_terms(
        &[MaskTerm::Code {
            vals,
            validity,
            op,
            rhs,
        }],
        true,
        rids,
        out,
    );
}

/// Constant-verdict kernel (a dictionary miss: `= 'absent'` keeps nothing,
/// `<> 'absent'` keeps everything non-NULL — pass the validity as a
/// [`MaskTerm::Valid`] term for the latter when the column bears NULLs).
pub fn mask_const(n: usize, verdict: bool, out: &mut BitMask) {
    out.reset(n, verdict);
}

/// Gather kernel: `out[i] = vals[rids[i]]`.
pub fn gather_i64(vals: &[i64], rids: &[usize], out: &mut Vec<i64>) {
    out.reserve(rids.len());
    out.extend(rids.iter().map(|&r| vals[r]));
}

/// Gather kernel over dictionary codes.
pub fn gather_u32(vals: &[u32], rids: &[usize], out: &mut Vec<u32>) {
    out.reserve(rids.len());
    out.extend(rids.iter().map(|&r| vals[r]));
}

/// Hash kernel over column-major integer join keys (`nk` keys per row, key
/// `k` of row `i` at `keys[k * live + i]`): one hash per row, identical
/// bit-for-bit to [`crate::hash_values`] over the corresponding
/// `Value::Int`s — the kernel only skips the enum dispatch, never changes
/// the hash function, so in-memory buckets and Grace partition routing see
/// the same hashes as the scalar path.
pub fn hash_keys_i64(keys: &[i64], nk: usize, live: usize, out: &mut Vec<u64>) {
    debug_assert_eq!(keys.len(), nk * live);
    out.clear();
    out.reserve(live);
    for i in 0..live {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for k in 0..nk {
            // `Value::Int`'s Hash impl: numeric discriminant, then the
            // bits of the value's f64 image (an i64 cast never produces
            // -0.0, so no normalization is needed).
            2u8.hash(&mut h);
            (keys[k * live + i] as f64).to_bits().hash(&mut h);
        }
        out.push(h.finish());
    }
}

/// One gathered composite-key column for [`hash_keys_typed`]: dense
/// per-probe-row key values, already gathered out of the batch.
pub enum HashKey<'a> {
    /// Integer key values (hash like `Value::Int`).
    I64(&'a [i64]),
    /// Dictionary-coded string key: `codes[i]` indexes `dict`, and the
    /// *string* is hashed (hash state is sequential, so per-code hash
    /// contributions cannot be precomputed — but the dictionary lookup
    /// replaces the `Value` enum walk and clone of the scalar path).
    Str {
        /// Gathered codes, one per probe row.
        codes: &'a [u32],
        /// The (shared, sorted) dictionary the codes index.
        dict: &'a [String],
    },
}

/// Composite-key hash kernel over gathered typed key columns, NULL-aware:
/// row `i` hashes its keys in sequence exactly like [`crate::hash_values`]
/// over the corresponding `Value`s, or produces `None` when any key slot
/// is NULL (`validity` bit cleared) — mirroring the scalar probe path,
/// which never probes on a NULL key.  The `None`s keep Grace partition
/// routing consistent: a NULL-keyed probe row loads no partition on
/// either path.
pub fn hash_keys_typed(
    keys: &[HashKey<'_>],
    validity: Option<&BitMask>,
    live: usize,
    out: &mut Vec<Option<u64>>,
) {
    out.clear();
    out.reserve(live);
    for i in 0..live {
        if validity.is_some_and(|v| !v.get(i)) {
            out.push(None);
            continue;
        }
        let mut h = std::collections::hash_map::DefaultHasher::new();
        for k in keys {
            match k {
                HashKey::I64(vals) => {
                    2u8.hash(&mut h);
                    (vals[i] as f64).to_bits().hash(&mut h);
                }
                HashKey::Str { codes, dict } => {
                    3u8.hash(&mut h);
                    dict[codes[i] as usize].hash(&mut h);
                }
            }
        }
        out.push(Some(h.finish()));
    }
}

/// Masked aggregate over an `i64` image: COUNT / SUM / MIN / MAX of the
/// valid slots in one reduction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaskedAgg {
    /// Number of valid (non-NULL) slots.
    pub count: usize,
    /// Sum of the valid slots (widened — a billion-row `i64` column
    /// cannot overflow an `i128` accumulator).
    pub sum: i128,
    /// Minimum valid slot, `None` when every slot is NULL.
    pub min: Option<i64>,
    /// Maximum valid slot, `None` when every slot is NULL.
    pub max: Option<i64>,
}

/// COUNT/SUM/MIN/MAX reduction over an `i64` image, skipping NULL slots.
/// The no-NULL fast path is a single branch-free fold; the masked path
/// walks set validity bits (cost proportional to the popcount).
pub fn agg_i64_masked(vals: &[i64], validity: Option<&BitMask>) -> MaskedAgg {
    let mut agg = MaskedAgg::default();
    let (mut mn, mut mx) = (i64::MAX, i64::MIN);
    match validity {
        None => {
            for &v in vals {
                agg.sum += v as i128;
                mn = mn.min(v);
                mx = mx.max(v);
            }
            agg.count = vals.len();
        }
        Some(m) => {
            debug_assert_eq!(m.len(), vals.len());
            for i in m.ones() {
                let v = vals[i];
                agg.sum += v as i128;
                mn = mn.min(v);
                mx = mx.max(v);
                agg.count += 1;
            }
        }
    }
    if agg.count > 0 {
        agg.min = Some(mn);
        agg.max = Some(mx);
    }
    agg
}

/// Stable permutation sort over columnar `i64` sort keys: returns the row
/// indices `0..n` ordered lexicographically by the key columns, ties in
/// input order.  This is the columnar SORT tail — keys are extracted once
/// into flat columns, the permutation is sorted (indices move, rows do
/// not), and the caller gathers payloads through it.
pub fn sort_permutation_i64(cols: &[Vec<i64>], n: usize) -> Vec<u32> {
    debug_assert!(cols.iter().all(|c| c.len() == n));
    let mut perm: Vec<u32> = (0..n as u32).collect();
    match cols {
        [] => {}
        [col] => perm.sort_by_key(|&i| col[i as usize]),
        _ => perm.sort_by(|&a, &b| {
            for col in cols {
                let ord = col[a as usize].cmp(&col[b as usize]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        }),
    }
    perm
}

/// The value image of a [`SortKey`] column.
pub enum SortVals<'a> {
    /// Integer keys.
    I64(&'a [i64]),
    /// Dictionary codes of a sorted dictionary.
    Code(&'a [u32]),
}

/// A sort key column in permutation-sort form: a typed value image plus
/// an optional validity mask.  NULL slots (cleared bits) sort *first* and
/// compare equal to each other — exactly `Value::cmp`'s `Null < _` order,
/// so the typed sort path reproduces the scalar row order bit-for-bit on
/// NULL-bearing columns.
pub struct SortKey<'a> {
    /// The key values (NULL slots hold an arbitrary sentinel).
    pub vals: SortVals<'a>,
    /// NULL gate: a cleared bit sorts before every valid value.
    pub validity: Option<&'a BitMask>,
}

impl<'a> SortKey<'a> {
    /// A no-NULL integer key column.
    pub fn i64(vals: &'a [i64]) -> Self {
        SortKey {
            vals: SortVals::I64(vals),
            validity: None,
        }
    }

    /// A no-NULL dictionary-code key column.
    pub fn code(vals: &'a [u32]) -> Self {
        SortKey {
            vals: SortVals::Code(vals),
            validity: None,
        }
    }

    #[inline]
    fn cmp_at(&self, a: usize, b: usize) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let (va, vb) = match self.validity {
            Some(m) => (m.get(a), m.get(b)),
            None => (true, true),
        };
        match (va, vb) {
            (false, false) => Ordering::Equal,
            (false, true) => Ordering::Less,
            (true, false) => Ordering::Greater,
            (true, true) => match &self.vals {
                SortVals::I64(v) => v[a].cmp(&v[b]),
                SortVals::Code(v) => v[a].cmp(&v[b]),
            },
        }
    }
}

/// Stable permutation sort over mixed typed key columns (NULLs first).
pub fn sort_permutation_typed(cols: &[SortKey<'_>], n: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by(|&a, &b| {
        for col in cols {
            let ord = col.cmp_at(a as usize, b as usize);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    perm
}

/// Reference check used by the parity tests: does the kernel verdict for
/// `lhs op rhs` match the scalar `Value` comparison?
pub fn cmp_matches_value(op: KernelCmp, lhs: &Value, rhs: &Value) -> Option<bool> {
    let ord = lhs.sql_cmp(rhs)?;
    Some(match op {
        KernelCmp::Eq => ord == std::cmp::Ordering::Equal,
        KernelCmp::Ne => ord != std::cmp::Ordering::Equal,
        KernelCmp::Lt => ord == std::cmp::Ordering::Less,
        KernelCmp::Le => ord != std::cmp::Ordering::Greater,
        KernelCmp::Gt => ord == std::cmp::Ordering::Greater,
        KernelCmp::Ge => ord != std::cmp::Ordering::Less,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::hash_values;

    const OPS: [KernelCmp; 6] = [
        KernelCmp::Eq,
        KernelCmp::Ne,
        KernelCmp::Lt,
        KernelCmp::Le,
        KernelCmp::Gt,
        KernelCmp::Ge,
    ];

    #[test]
    fn mask_cmp_i64_matches_scalar_comparison() {
        let vals: Vec<i64> = (0..200).map(|i| (i * 7 % 23) - 11).collect();
        let rids: Vec<usize> = (0..200).filter(|i| i % 3 != 1).collect();
        let mut keep = BitMask::new();
        for op in OPS {
            mask_cmp_i64(&vals, None, &rids, op, 5, &mut keep);
            assert_eq!(keep.len(), rids.len());
            for (i, &rid) in rids.iter().enumerate() {
                let want = cmp_matches_value(op, &Value::Int(vals[rid]), &Value::Int(5)).unwrap();
                assert_eq!(keep.get(i), want, "{op:?} rid {rid}");
            }
        }
    }

    #[test]
    fn null_slots_never_match_any_operator() {
        // Even `Ne` fails on NULL: `NULL <> 5` is unknown, and unknown
        // drops the row — the validity word must gate every operator.
        let vals: Vec<i64> = vec![5, 0, 7, 0, 5, 3];
        let validity = BitMask::from_bools([true, false, true, false, true, true]);
        let rids: Vec<usize> = (0..vals.len()).collect();
        let mut keep = BitMask::new();
        for op in OPS {
            mask_cmp_i64(&vals, Some(&validity), &rids, op, 5, &mut keep);
            for (i, &rid) in rids.iter().enumerate() {
                if !validity.get(rid) {
                    assert!(!keep.get(i), "{op:?}: NULL slot {rid} matched");
                } else {
                    let want =
                        cmp_matches_value(op, &Value::Int(vals[rid]), &Value::Int(5)).unwrap();
                    assert_eq!(keep.get(i), want, "{op:?} rid {rid}");
                }
            }
        }
    }

    #[test]
    fn fused_terms_match_sequential_application() {
        let a: Vec<i64> = (0..300).map(|i| i % 17).collect();
        let b: Vec<u32> = (0..300).map(|i| (i % 5) as u32).collect();
        let validity = BitMask::from_bools((0..300).map(|i| i % 11 != 0));
        let rids: Vec<usize> = (0..300).filter(|i| i % 2 == 0).collect();
        let terms = [
            MaskTerm::I64 {
                vals: &a,
                validity: Some(&validity),
                op: KernelCmp::Ge,
                rhs: 4,
            },
            MaskTerm::Code {
                vals: &b,
                validity: None,
                op: KernelCmp::Lt,
                rhs: 3,
            },
            MaskTerm::Valid {
                validity: &validity,
            },
        ];
        let scalar = |r: usize| (a[r] >= 4 && validity.get(r), b[r] < 3, validity.get(r));
        let mut keep = BitMask::new();
        mask_terms(&terms, true, &rids, &mut keep);
        for (i, &r) in rids.iter().enumerate() {
            let (t0, t1, t2) = scalar(r);
            assert_eq!(keep.get(i), t0 && t1 && t2, "AND rid {r}");
        }
        mask_terms(&terms, false, &rids, &mut keep);
        for (i, &r) in rids.iter().enumerate() {
            let (t0, t1, t2) = scalar(r);
            assert_eq!(keep.get(i), t0 || t1 || t2, "OR rid {r}");
        }
        // Empty conjunction keeps all, empty disjunction keeps none.
        mask_terms(&[], true, &rids, &mut keep);
        assert!(keep.all_true());
        mask_terms(&[], false, &rids, &mut keep);
        assert_eq!(keep.count_ones(), 0);
    }

    #[test]
    fn hash_kernel_matches_value_hashes() {
        let live = 4;
        // Column-major: key 0 = [1, -2, 0, 9], key 1 = [7, 7, 8, 8].
        let keys: Vec<i64> = vec![1, -2, 0, 9, 7, 7, 8, 8];
        let mut out = Vec::new();
        hash_keys_i64(&keys, 2, live, &mut out);
        for i in 0..live {
            let vals = [Value::Int(keys[i]), Value::Int(keys[live + i])];
            assert_eq!(out[i], hash_values(vals.iter()), "row {i}");
        }
    }

    #[test]
    fn typed_hash_kernel_matches_value_hashes_and_skips_nulls() {
        let ints: Vec<i64> = vec![4, -1, 0, 9];
        let dict: Vec<String> = vec!["apple".into(), "fig".into(), "pear".into()];
        let codes: Vec<u32> = vec![2, 0, 1, 0];
        let validity = BitMask::from_bools([true, true, false, true]);
        let keys = [
            HashKey::I64(&ints),
            HashKey::Str {
                codes: &codes,
                dict: &dict,
            },
        ];
        let mut out = Vec::new();
        hash_keys_typed(&keys, Some(&validity), 4, &mut out);
        for i in 0..4 {
            if !validity.get(i) {
                assert_eq!(out[i], None, "NULL key row {i} must not hash");
                continue;
            }
            let vals = [Value::Int(ints[i]), Value::str(&dict[codes[i] as usize])];
            assert_eq!(out[i], Some(hash_values(vals.iter())), "row {i}");
        }
        // Without a validity mask every row hashes.
        hash_keys_typed(&keys, None, 4, &mut out);
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn masked_aggregates_match_scalar_reduction() {
        let vals: Vec<i64> = (0..500).map(|i| (i * 13 % 101) - 50).collect();
        let validity = BitMask::from_bools((0..500).map(|i| i % 7 != 3));
        let agg = agg_i64_masked(&vals, Some(&validity));
        let live: Vec<i64> = (0..500)
            .filter(|&i| validity.get(i))
            .map(|i| vals[i])
            .collect();
        assert_eq!(agg.count, live.len());
        assert_eq!(agg.sum, live.iter().map(|&v| v as i128).sum::<i128>());
        assert_eq!(agg.min, live.iter().min().copied());
        assert_eq!(agg.max, live.iter().max().copied());
        // No-NULL fast path agrees with the masked path on a full mask.
        let full = BitMask::filled(vals.len(), true);
        assert_eq!(
            agg_i64_masked(&vals, None),
            agg_i64_masked(&vals, Some(&full))
        );
        // All-NULL column: COUNT 0, no extrema.
        let none = BitMask::filled(vals.len(), false);
        let empty = agg_i64_masked(&vals, Some(&none));
        assert_eq!(
            (empty.count, empty.min, empty.max, empty.sum),
            (0, None, None, 0)
        );
    }

    #[test]
    fn sort_permutation_is_stable_and_lexicographic() {
        let c0: Vec<i64> = vec![2, 1, 2, 1];
        let c1: Vec<i64> = vec![9, 5, 3, 5];
        let perm = sort_permutation_i64(&[c0.clone(), c1.clone()], 4);
        assert_eq!(perm, vec![1, 3, 2, 0]);
        // Single-column specialization keeps ties in input order.
        let perm = sort_permutation_i64(&[vec![3, 1, 3, 1]], 4);
        assert_eq!(perm, vec![1, 3, 0, 2]);
        // Empty key: identity (pure seq order).
        assert_eq!(sort_permutation_i64(&[], 3), vec![0, 1, 2]);
        // Mixed typed keys sort codes like strings.
        let perm =
            sort_permutation_typed(&[SortKey::code(&[1, 0, 1]), SortKey::i64(&[5, 9, 2])], 3);
        assert_eq!(perm, vec![1, 2, 0]);
    }

    #[test]
    fn nullable_sort_keys_put_nulls_first_stably() {
        // Values with sentinel 0 at NULL slots; Value order is NULL < Int.
        let vals: Vec<i64> = vec![5, 0, -3, 0, 5];
        let validity = BitMask::from_bools([true, false, true, false, true]);
        let key = SortKey {
            vals: SortVals::I64(&vals),
            validity: Some(&validity),
        };
        let perm = sort_permutation_typed(&[key], 5);
        // NULLs (rows 1, 3) first in input order, then -3, then the 5s
        // in input order.
        assert_eq!(perm, vec![1, 3, 2, 0, 4]);
    }

    #[test]
    fn mask_const_and_gather() {
        let mut keep = BitMask::new();
        mask_const(3, false, &mut keep);
        assert_eq!((keep.len(), keep.count_ones()), (3, 0));
        mask_const(3, true, &mut keep);
        assert!(keep.all_true());
        let mut out = Vec::new();
        gather_i64(&[10, 20, 30], &[2, 0], &mut out);
        assert_eq!(out, vec![30, 10]);
        let mut codes = Vec::new();
        gather_u32(&[1, 2, 3], &[0, 2], &mut codes);
        assert_eq!(codes, vec![1, 3]);
    }
}
