//! Global admission control: apportioning one process-wide memory budget
//! across concurrent queries.
//!
//! The per-query [`crate::MemBudget`] governs *one* execution's pipeline
//! breakers.  A query service runs many executions at once, and their
//! budgets must sum to something the process can actually hold — that is
//! the [`AdmissionController`]'s job.  Every query asks for admission
//! before executing; the controller answers in one of three ways:
//!
//! 1. **Admit** — a session slot and a byte *grant* are available.  The
//!    grant (a slice of `XQJG_GLOBAL_BUDGET`) becomes the query's
//!    `mem_budget`, so an oversubscribed service *forces spill* instead of
//!    over-allocating: late arrivals receive smaller slices and their
//!    pipeline breakers go external (the machinery of `crate::spill`).
//! 2. **Queue** — no slot or no reasonable slice is free.  The query waits
//!    in a bounded FIFO queue (no overtaking) until capacity releases, its
//!    [`CancelToken`] fires ([`ExecError::Cancelled`] — the waiter's queue
//!    position is released immediately), or the configured queue timeout
//!    elapses ([`ExecError::Timeout`]).
//! 3. **Reject** — the wait queue itself is full ([`ExecError::Overloaded`]);
//!    the service is oversubscribed beyond what queueing absorbs.
//!
//! Grants are RAII: dropping the [`AdmissionPermit`] returns the slice and
//! the session slot and wakes the queue, so error paths cannot leak
//! capacity.  [`AdmissionController::drained`] is the shutdown assertion
//! — after the last query finishes, occupancy must be back to zero.

use crate::error::{CancelToken, ExecError};
use crate::morsel::{strict_bytes, strict_duration, strict_usize, ConfigError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default cap on concurrently admitted queries (`XQJG_MAX_SESSIONS`).
pub const DEFAULT_MAX_SESSIONS: usize = 16;

/// Default bound on queries waiting for admission, as a multiple of
/// `max_sessions`.
pub const QUEUE_DEPTH_PER_SESSION: usize = 4;

/// Default admission-queue timeout (`XQJG_QUEUE_TIMEOUT`).
pub const DEFAULT_QUEUE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a queued waiter sleeps between cancellation polls.  Releases
/// notify the condvar immediately; this bound only affects how fast a
/// cancel-while-queued is observed.
const CANCEL_POLL: Duration = Duration::from_millis(10);

/// The admission knobs (`XQJG_GLOBAL_BUDGET` / `XQJG_MAX_SESSIONS` /
/// `XQJG_QUEUE_TIMEOUT`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Process-wide memory budget apportioned across concurrent queries
    /// (`None` = unlimited: admission only gates session slots).
    pub global_budget: Option<usize>,
    /// Maximum concurrently admitted queries.
    pub max_sessions: usize,
    /// Maximum queries waiting in the admission queue before new arrivals
    /// are rejected with [`ExecError::Overloaded`].
    pub queue_depth: usize,
    /// How long one query may wait for admission before failing with
    /// [`ExecError::Timeout`].
    pub queue_timeout: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            global_budget: None,
            max_sessions: DEFAULT_MAX_SESSIONS,
            queue_depth: DEFAULT_MAX_SESSIONS * QUEUE_DEPTH_PER_SESSION,
            queue_timeout: DEFAULT_QUEUE_TIMEOUT,
        }
    }
}

impl AdmissionConfig {
    /// Read the admission knobs from the environment, failing on malformed
    /// values with a typed [`ConfigError`] (same strict syntax as
    /// [`crate::ExecConfig::try_from_env`]):
    ///
    /// * `XQJG_GLOBAL_BUDGET` — process-wide memory budget in bytes
    ///   (`k`/`m`/`g` suffixes; unset/`0` = unlimited),
    /// * `XQJG_MAX_SESSIONS` — concurrently admitted queries (positive
    ///   integer; default [`DEFAULT_MAX_SESSIONS`]),
    /// * `XQJG_QUEUE_TIMEOUT` — admission-queue wait limit (`ms`/`s`/`m`
    ///   suffixes, bare digits are milliseconds; default 10 s).
    pub fn try_from_env() -> Result<Self, ConfigError> {
        let mut cfg = AdmissionConfig::default();
        if let Ok(v) = std::env::var("XQJG_GLOBAL_BUDGET") {
            cfg.global_budget = strict_bytes("XQJG_GLOBAL_BUDGET", &v)?;
        }
        if let Ok(v) = std::env::var("XQJG_MAX_SESSIONS") {
            if let Some(n) = strict_usize("XQJG_MAX_SESSIONS", &v)? {
                cfg.max_sessions = n;
                cfg.queue_depth = n * QUEUE_DEPTH_PER_SESSION;
            }
        }
        if let Ok(v) = std::env::var("XQJG_QUEUE_TIMEOUT") {
            if let Some(t) = strict_duration("XQJG_QUEUE_TIMEOUT", &v)? {
                cfg.queue_timeout = t;
            }
        }
        Ok(cfg)
    }

    /// Builder: set (or clear) the global memory budget.
    pub fn with_global_budget(mut self, bytes: Option<usize>) -> Self {
        self.global_budget = bytes.filter(|&b| b > 0);
        self
    }

    /// Builder: set the concurrent-session cap (also resizes the default
    /// queue depth).
    pub fn with_max_sessions(mut self, n: usize) -> Self {
        self.max_sessions = n.max(1);
        self.queue_depth = self.max_sessions * QUEUE_DEPTH_PER_SESSION;
        self
    }

    /// Builder: set the admission-queue depth.
    pub fn with_queue_depth(mut self, n: usize) -> Self {
        self.queue_depth = n;
        self
    }

    /// Builder: set the admission-queue timeout.
    pub fn with_queue_timeout(mut self, t: Duration) -> Self {
        self.queue_timeout = t;
        self
    }

    /// The fair-share floor: the smallest slice worth admitting a query
    /// with when a global budget is set.  Admission waits until at least
    /// this much is free (rather than handing out ever-thinner slices to
    /// an unbounded number of queries).
    pub fn fair_share(&self) -> usize {
        self.global_budget
            .map(|g| (g / self.max_sessions).max(1))
            .unwrap_or(0)
    }
}

/// Queue + occupancy state behind the controller's mutex.
struct State {
    /// Bytes currently granted out of the global budget.
    in_use: usize,
    /// Queries currently admitted (not yet released).
    active: usize,
    /// FIFO wait queue of ticket numbers.
    queue: VecDeque<u64>,
    /// Next ticket to hand out.
    next_ticket: u64,
}

/// Monotonic counters describing everything the controller has decided.
/// Snapshot via [`AdmissionController::stats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Queries admitted (immediately or after queueing).
    pub admitted: u64,
    /// Admissions that had to wait in the queue first.
    pub queued: u64,
    /// Waits that ended in [`ExecError::Timeout`].
    pub timeouts: u64,
    /// Waits that ended in [`ExecError::Cancelled`].
    pub cancelled: u64,
    /// Arrivals rejected because the queue was full.
    pub rejected: u64,
    /// Permits released so far.
    pub released: u64,
    /// Bytes of the global budget currently granted.
    pub in_use: usize,
    /// Queries currently admitted.
    pub active: usize,
    /// Queries currently waiting in the queue.
    pub waiting: usize,
    /// High-water mark of granted bytes.
    pub peak_in_use: usize,
}

/// The process-wide admission controller (see the module docs).  Shared
/// across sessions via `Arc`; every method takes `&self`.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    wake: Condvar,
    admitted: AtomicU64,
    queued: AtomicU64,
    timeouts: AtomicU64,
    cancelled: AtomicU64,
    rejected: AtomicU64,
    released: AtomicU64,
    peak_in_use: AtomicU64,
}

impl AdmissionController {
    /// A controller over the given knobs.
    pub fn new(cfg: AdmissionConfig) -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            cfg,
            state: Mutex::new(State {
                in_use: 0,
                active: 0,
                queue: VecDeque::new(),
                next_ticket: 0,
            }),
            wake: Condvar::new(),
            admitted: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            released: AtomicU64::new(0),
            peak_in_use: AtomicU64::new(0),
        })
    }

    /// The knobs this controller enforces.
    pub fn config(&self) -> &AdmissionConfig {
        &self.cfg
    }

    /// Can a query be admitted right now, given the current occupancy?
    fn admissible(&self, s: &State) -> bool {
        if s.active >= self.cfg.max_sessions {
            return false;
        }
        match self.cfg.global_budget {
            None => true,
            // First query in always gets whatever is configured; after
            // that, wait until at least a fair share is free.
            Some(g) => s.in_use == 0 || g - s.in_use >= self.cfg.fair_share(),
        }
    }

    /// The byte grant for a query wanting `want` (its session budget;
    /// `None` = as much as allowed), given current occupancy.
    fn grant(&self, s: &State, want: Option<usize>) -> Option<usize> {
        match self.cfg.global_budget {
            // No global budget: the session budget passes through.
            None => want,
            Some(g) => {
                let available = g - s.in_use;
                Some(want.unwrap_or(g).min(available).max(1))
            }
        }
    }

    /// Book an admission under the lock (caller has checked
    /// [`Self::admissible`]).
    fn book(self: &Arc<Self>, s: &mut State, want: Option<usize>) -> AdmissionPermit {
        let granted = self.grant(s, want);
        if self.cfg.global_budget.is_some() {
            s.in_use += granted.unwrap_or(0);
            let mut peak = self.peak_in_use.load(Ordering::Relaxed);
            while (s.in_use as u64) > peak {
                match self.peak_in_use.compare_exchange_weak(
                    peak,
                    s.in_use as u64,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(seen) => peak = seen,
                }
            }
        }
        s.active += 1;
        self.admitted.fetch_add(1, Ordering::Relaxed);
        AdmissionPermit {
            ctrl: self.clone(),
            granted,
            charged: self.cfg.global_budget.is_some(),
        }
    }

    /// Ask for admission.  `want` is the session's configured per-query
    /// memory budget (`None` = unbounded); the returned permit's
    /// [`AdmissionPermit::granted`] is the budget the query must execute
    /// under — under a global budget it is always `Some` slice, which is
    /// how oversubscription forces spill instead of memory blow-up.
    ///
    /// Blocks (FIFO, no overtaking) while the service is saturated;
    /// `cancel` aborts the wait with [`ExecError::Cancelled`], the
    /// configured queue timeout with [`ExecError::Timeout`], and a full
    /// queue rejects immediately with [`ExecError::Overloaded`].
    pub fn admit(
        self: &Arc<Self>,
        want: Option<usize>,
        cancel: Option<&CancelToken>,
    ) -> Result<AdmissionPermit, ExecError> {
        let deadline = Instant::now() + self.cfg.queue_timeout;
        let mut s = self.state.lock().expect("admission state poisoned");
        // Fast path: nobody waiting and capacity free.
        if s.queue.is_empty() && self.admissible(&s) {
            return Ok(self.book(&mut s, want));
        }
        if s.queue.len() >= self.cfg.queue_depth {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(ExecError::Overloaded {
                queued: s.queue.len(),
                depth: self.cfg.queue_depth,
            });
        }
        let ticket = s.next_ticket;
        s.next_ticket += 1;
        s.queue.push_back(ticket);
        self.queued.fetch_add(1, Ordering::Relaxed);
        loop {
            // Only the queue head may admit — strict FIFO, deterministic
            // under load.
            if s.queue.front() == Some(&ticket) && self.admissible(&s) {
                s.queue.pop_front();
                let permit = self.book(&mut s, want);
                // The next waiter may also be admissible (e.g. two session
                // slots freed at once).
                self.wake.notify_all();
                return Ok(permit);
            }
            if cancel.is_some_and(CancelToken::is_cancelled) {
                s.queue.retain(|&t| t != ticket);
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                self.wake.notify_all();
                return Err(ExecError::Cancelled);
            }
            let now = Instant::now();
            if now >= deadline {
                s.queue.retain(|&t| t != ticket);
                self.timeouts.fetch_add(1, Ordering::Relaxed);
                self.wake.notify_all();
                return Err(ExecError::Timeout {
                    limit_ms: self.cfg.queue_timeout.as_millis() as u64,
                });
            }
            // Sleep until a release notifies, the deadline nears, or the
            // cancellation poll interval elapses.
            let wait = (deadline - now).min(CANCEL_POLL);
            let (guard, _) = self
                .wake
                .wait_timeout(s, wait)
                .expect("admission state poisoned");
            s = guard;
        }
    }

    /// Release a permit's grant (called from [`AdmissionPermit::drop`]).
    fn release(&self, granted: Option<usize>, charged: bool) {
        let mut s = self.state.lock().expect("admission state poisoned");
        if charged {
            let g = granted.unwrap_or(0);
            debug_assert!(s.in_use >= g, "releasing more than was granted");
            s.in_use -= g;
        }
        debug_assert!(s.active > 0, "releasing a permit with no active query");
        s.active -= 1;
        self.released.fetch_add(1, Ordering::Relaxed);
        drop(s);
        self.wake.notify_all();
    }

    /// Counter snapshot (monotonic totals plus current occupancy).
    pub fn stats(&self) -> AdmissionStats {
        let s = self.state.lock().expect("admission state poisoned");
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            in_use: s.in_use,
            active: s.active,
            waiting: s.queue.len(),
            peak_in_use: self.peak_in_use.load(Ordering::Relaxed) as usize,
        }
    }

    /// Is the controller fully drained — no active queries, no granted
    /// bytes, no waiters?  The clean-shutdown assertion of a serving
    /// layer.
    pub fn drained(&self) -> bool {
        let s = self.state.lock().expect("admission state poisoned");
        s.active == 0 && s.in_use == 0 && s.queue.is_empty()
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("config", &self.cfg)
            .field("stats", &self.stats())
            .finish()
    }
}

/// An admission grant, RAII-released.  Execute the query with
/// [`AdmissionPermit::granted`] as its `mem_budget`, then drop the permit.
#[must_use = "dropping the permit releases the admission grant"]
#[derive(Debug)]
pub struct AdmissionPermit {
    ctrl: Arc<AdmissionController>,
    granted: Option<usize>,
    charged: bool,
}

impl AdmissionPermit {
    /// The memory budget the admitted query must execute under: a slice of
    /// the global budget when one is configured (possibly smaller than the
    /// session asked for — the spill machinery absorbs the difference), or
    /// the session's own budget when admission is slot-only.
    pub fn granted(&self) -> Option<usize> {
        self.granted
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        self.ctrl.release(self.granted, self.charged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny(global: usize, sessions: usize) -> Arc<AdmissionController> {
        AdmissionController::new(
            AdmissionConfig::default()
                .with_global_budget(Some(global))
                .with_max_sessions(sessions)
                .with_queue_timeout(Duration::from_millis(200)),
        )
    }

    #[test]
    fn first_query_gets_the_full_remaining_budget() {
        let c = tiny(1000, 4);
        let p = c.admit(None, None).unwrap();
        assert_eq!(p.granted(), Some(1000));
        drop(p);
        assert!(c.drained());
        assert_eq!(c.stats().released, 1);
    }

    #[test]
    fn session_budget_caps_the_grant() {
        let c = tiny(1000, 4);
        let p = c.admit(Some(100), None).unwrap();
        assert_eq!(p.granted(), Some(100));
        // The rest of the budget serves the next query.
        let q = c.admit(None, None).unwrap();
        assert_eq!(q.granted(), Some(900));
    }

    #[test]
    fn no_global_budget_passes_session_budget_through() {
        let c = AdmissionController::new(AdmissionConfig::default());
        let p = c.admit(Some(4096), None).unwrap();
        assert_eq!(p.granted(), Some(4096));
        let q = c.admit(None, None).unwrap();
        assert_eq!(q.granted(), None);
        assert_eq!(c.stats().in_use, 0, "slot-only admission books no bytes");
    }

    #[test]
    fn oversubscription_queues_and_release_unblocks_fifo() {
        let c = tiny(1000, 2);
        // Two holders take everything (fair share = 500).
        let a = c.admit(Some(500), None).unwrap();
        let b = c.admit(None, None).unwrap();
        assert_eq!(b.granted(), Some(500));
        // A third query must queue, then be admitted once a holder leaves.
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(Some(50), None).map(|p| p.granted()));
        while c.stats().waiting == 0 {
            std::thread::yield_now();
        }
        drop(a);
        assert_eq!(waiter.join().unwrap().unwrap(), Some(50));
        let s = c.stats();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.queued, 1);
        assert_eq!(s.timeouts, 0);
        drop(b);
    }

    #[test]
    fn queue_timeout_surfaces_as_timeout_error() {
        let c = tiny(1000, 1);
        let _hold = c.admit(None, None).unwrap();
        let err = c.admit(None, None).unwrap_err();
        assert_eq!(err, ExecError::Timeout { limit_ms: 200 });
        assert_eq!(c.stats().timeouts, 1);
        assert_eq!(c.stats().waiting, 0, "timed-out waiter left the queue");
    }

    #[test]
    fn cancellation_while_queued_releases_the_slot() {
        let c = AdmissionController::new(
            AdmissionConfig::default()
                .with_max_sessions(1)
                .with_queue_timeout(Duration::from_secs(30)),
        );
        let hold = c.admit(None, None).unwrap();
        let token = CancelToken::new();
        let t2 = token.clone();
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.admit(None, Some(&t2)).map(|_| ()));
        while c.stats().waiting == 0 {
            std::thread::yield_now();
        }
        token.cancel();
        assert_eq!(waiter.join().unwrap().unwrap_err(), ExecError::Cancelled);
        let s = c.stats();
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.waiting, 0, "cancelled waiter released its queue slot");
        // The freed position is immediately usable once the holder leaves.
        drop(hold);
        assert!(c.admit(None, None).is_ok());
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let c = AdmissionController::new(
            AdmissionConfig::default()
                .with_max_sessions(1)
                .with_queue_depth(0)
                .with_queue_timeout(Duration::from_millis(50)),
        );
        let _hold = c.admit(None, None).unwrap();
        let err = c.admit(None, None).unwrap_err();
        assert_eq!(
            err,
            ExecError::Overloaded {
                queued: 0,
                depth: 0
            }
        );
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn session_slots_gate_even_without_a_global_budget() {
        let c = AdmissionController::new(
            AdmissionConfig::default()
                .with_max_sessions(2)
                .with_queue_timeout(Duration::from_millis(100)),
        );
        let _a = c.admit(None, None).unwrap();
        let _b = c.admit(None, None).unwrap();
        assert!(matches!(
            c.admit(None, None),
            Err(ExecError::Timeout { .. })
        ));
    }

    #[test]
    fn concurrent_churn_never_leaks_capacity() {
        let c = tiny(10_000, 4);
        std::thread::scope(|scope| {
            for i in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for j in 0..50 {
                        let want = Some(500 + (i * 37 + j * 13) % 2000);
                        match c.admit(want, None) {
                            Ok(p) => {
                                assert!(p.granted().unwrap() >= 1);
                                drop(p);
                            }
                            Err(ExecError::Timeout { .. }) => {}
                            Err(e) => panic!("unexpected admission error: {e}"),
                        }
                    }
                });
            }
        });
        assert!(c.drained(), "all grants returned: {:?}", c.stats());
        let s = c.stats();
        assert_eq!(s.admitted, s.released);
        assert!(s.peak_in_use <= 10_000, "never over-granted: {s:?}");
    }

    #[test]
    fn env_knobs_parse_strictly() {
        // No env mutation (tests run in parallel): exercise the strict
        // parsers the env reader is built from.
        assert_eq!(strict_bytes("XQJG_GLOBAL_BUDGET", "64k"), Ok(Some(65536)));
        assert_eq!(strict_bytes("XQJG_GLOBAL_BUDGET", ""), Ok(None));
        assert!(strict_bytes("XQJG_GLOBAL_BUDGET", "lots").is_err());
        assert_eq!(strict_usize("XQJG_MAX_SESSIONS", "8"), Ok(Some(8)));
        assert!(strict_usize("XQJG_MAX_SESSIONS", "0").is_err());
        assert_eq!(
            strict_duration("XQJG_QUEUE_TIMEOUT", "250ms"),
            Ok(Some(Duration::from_millis(250)))
        );
        assert!(strict_duration("XQJG_QUEUE_TIMEOUT", "soon").is_err());
    }

    #[test]
    fn fair_share_floor() {
        let cfg = AdmissionConfig::default()
            .with_global_budget(Some(1000))
            .with_max_sessions(4);
        assert_eq!(cfg.fair_share(), 250);
        assert_eq!(AdmissionConfig::default().fair_share(), 0);
    }
}
