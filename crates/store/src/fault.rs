//! Deterministic fault injection for the spill I/O paths.
//!
//! Robustness claims are worthless unverified: this module lets tests (and
//! operators chasing a repro) arm *named fault sites* inside the spill
//! machinery so that the n-th disk interaction at a site fails in a chosen
//! way.  Sites are armed either from the environment
//! (`XQJG_FAULTS=site:nth[:kind]`, comma-separated) or programmatically via
//! [`FaultPlan::install`]; a disarmed process pays one relaxed atomic load
//! per site check and nothing else.
//!
//! Fault sites (checked by `crate::spill`):
//!
//! | site                 | interaction                                  |
//! |----------------------|----------------------------------------------|
//! | `spill.run.create`   | creating a sort-run file                     |
//! | `spill.run.write`    | appending a record to a sort run             |
//! | `spill.run.read`     | reading a record back from any sorted run    |
//! | `spill.part.create`  | creating a Grace partition file              |
//! | `spill.part.write`   | appending a `(hash, rid)` partition entry    |
//! | `spill.part.read`    | reading a partition file back                |
//! | `spill.merge.create` | creating an intermediate cascade-merge run   |
//! | `spill.merge.write`  | appending a record to a cascade-merge run    |
//!
//! A trailing `*` in an armed site matches a whole family
//! (`spill.merge.*`, or just `*` for everything).  `nth` is 1-based
//! (`1` = the first interaction) or the keyword `always`; `kind` is one of
//! `io-error` (the operation fails cleanly), `short-write` (a truncated
//! record hits the disk *and* the operation reports failure) or `corrupt`
//! (the record is silently damaged on its way to disk — only the checksum
//! verification at read time can catch it).  Default kind: `io-error`.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Creating a sort-run file.
pub const SITE_RUN_CREATE: &str = "spill.run.create";
/// Appending a record to a sort run.
pub const SITE_RUN_WRITE: &str = "spill.run.write";
/// Reading a record back from a sorted run.
pub const SITE_RUN_READ: &str = "spill.run.read";
/// Creating a Grace partition file.
pub const SITE_PART_CREATE: &str = "spill.part.create";
/// Appending a `(hash, rid)` entry to a partition file.
pub const SITE_PART_WRITE: &str = "spill.part.write";
/// Reading a partition file back.
pub const SITE_PART_READ: &str = "spill.part.read";
/// Creating an intermediate cascade-merge run.
pub const SITE_MERGE_CREATE: &str = "spill.merge.create";
/// Appending a record to a cascade-merge run.
pub const SITE_MERGE_WRITE: &str = "spill.merge.write";

/// Every named fault site, for sweeps.
pub const ALL_SITES: [&str; 8] = [
    SITE_RUN_CREATE,
    SITE_RUN_WRITE,
    SITE_RUN_READ,
    SITE_PART_CREATE,
    SITE_PART_WRITE,
    SITE_PART_READ,
    SITE_MERGE_CREATE,
    SITE_MERGE_WRITE,
];

/// How an armed site fails when it triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an I/O error; nothing reaches the disk.
    IoError,
    /// A truncated record reaches the disk and the operation reports
    /// failure — the partial write poisons the file.
    ShortWrite,
    /// The record is silently bit-flipped on its way to disk; the
    /// operation reports success and only checksum verification at read
    /// time can detect the damage.
    Corrupt,
}

/// When an armed site triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Trigger on the n-th interaction only (1-based).
    Nth(u64),
    /// Trigger on every interaction.
    Always,
}

/// One armed fault: a site pattern, a trigger, a failure kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Site name, optionally ending in `*` to match a family.
    pub site: String,
    /// When the fault fires.
    pub trigger: Trigger,
    /// How the interaction fails.
    pub kind: FaultKind,
}

impl FaultSpec {
    fn matches(&self, site: &str) -> bool {
        match self.site.strip_suffix('*') {
            Some(prefix) => site.starts_with(prefix),
            None => self.site == site,
        }
    }
}

/// A set of armed faults.  Parse one from the `XQJG_FAULTS` syntax or
/// build one programmatically, then [`FaultPlan::install`] it for the
/// duration of a test.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The armed faults, first match wins per site check.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan arming a single site.
    pub fn single(site: impl Into<String>, trigger: Trigger, kind: FaultKind) -> FaultPlan {
        FaultPlan {
            specs: vec![FaultSpec {
                site: site.into(),
                trigger,
                kind,
            }],
        }
    }

    /// Parse the `XQJG_FAULTS` syntax: comma-separated `site:nth[:kind]`
    /// entries where `nth` is a 1-based count or `always` and `kind` is
    /// `io-error` (default), `short-write` or `corrupt`.  Returns `None`
    /// when nothing parses to an armed fault.
    pub fn parse(input: &str) -> Option<FaultPlan> {
        let mut specs = Vec::new();
        for entry in input.split(',') {
            let entry = entry.trim();
            if entry.is_empty() {
                continue;
            }
            let mut parts = entry.split(':');
            let site = parts.next()?.trim();
            if site.is_empty() {
                return None;
            }
            let trigger = match parts.next().map(str::trim) {
                None | Some("") => Trigger::Nth(1),
                Some("always") => Trigger::Always,
                Some(n) => Trigger::Nth(n.parse::<u64>().ok().filter(|&n| n > 0)?),
            };
            let kind = match parts.next().map(str::trim) {
                None | Some("") | Some("io-error") => FaultKind::IoError,
                Some("short-write") => FaultKind::ShortWrite,
                Some("corrupt") => FaultKind::Corrupt,
                Some(_) => return None,
            };
            specs.push(FaultSpec {
                site: site.to_string(),
                trigger,
                kind,
            });
        }
        if specs.is_empty() {
            None
        } else {
            Some(FaultPlan { specs })
        }
    }

    /// Arm this plan process-wide until the returned guard drops.
    /// Installation serializes on a global lock, so concurrently running
    /// tests that inject faults line up instead of corrupting each other's
    /// plans; trigger counters start at zero at install time.
    pub fn install(self) -> FaultGuard {
        let lock = install_lock().lock().unwrap_or_else(|e| e.into_inner());
        let prev = {
            let mut active = active().lock().unwrap_or_else(|e| e.into_inner());
            std::mem::replace(
                &mut *active,
                self.specs
                    .into_iter()
                    .map(|spec| ArmedSpec { spec, hits: 0 })
                    .collect(),
            )
        };
        ARMED.store(true, Ordering::SeqCst);
        FaultGuard { prev, _lock: lock }
    }
}

/// Keeps a [`FaultPlan`] armed; dropping restores whatever was armed
/// before (normally: nothing).
pub struct FaultGuard {
    prev: Vec<ArmedSpec>,
    _lock: MutexGuard<'static, ()>,
}

impl Drop for FaultGuard {
    fn drop(&mut self) {
        let mut active = active().lock().unwrap_or_else(|e| e.into_inner());
        *active = std::mem::take(&mut self.prev);
        ARMED.store(!active.is_empty(), Ordering::SeqCst);
    }
}

#[derive(Debug)]
struct ArmedSpec {
    spec: FaultSpec,
    hits: u64,
}

static ARMED: AtomicBool = AtomicBool::new(false);

fn active() -> &'static Mutex<Vec<ArmedSpec>> {
    static ACTIVE: OnceLock<Mutex<Vec<ArmedSpec>>> = OnceLock::new();
    ACTIVE.get_or_init(|| Mutex::new(Vec::new()))
}

fn install_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Arm `XQJG_FAULTS` from the environment exactly once per process.  The
/// env-armed plan has no guard: it stays until the process exits (or a
/// programmatic [`FaultPlan::install`] temporarily shadows it).  Counters
/// are process-lifetime, so a `site:1` fault fires on the very first
/// interaction and never again — the retry semantics the acceptance
/// criteria lean on.
fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Some(plan) = std::env::var("XQJG_FAULTS")
            .ok()
            .and_then(|v| FaultPlan::parse(&v))
        {
            let mut active = active().lock().unwrap_or_else(|e| e.into_inner());
            active.extend(
                plan.specs
                    .into_iter()
                    .map(|spec| ArmedSpec { spec, hits: 0 }),
            );
            ARMED.store(!active.is_empty(), Ordering::SeqCst);
        }
    });
}

/// Record one interaction at `site` and report whether (and how) it must
/// fail.  The disarmed fast path is a single relaxed atomic load.
pub fn check(site: &'static str) -> Option<FaultKind> {
    init_from_env();
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let mut active = active().lock().unwrap_or_else(|e| e.into_inner());
    for armed in active.iter_mut() {
        if armed.spec.matches(site) {
            armed.hits += 1;
            return match armed.spec.trigger {
                Trigger::Always => Some(armed.spec.kind),
                Trigger::Nth(n) if armed.hits == n => Some(armed.spec.kind),
                Trigger::Nth(_) => None,
            };
        }
    }
    None
}

/// The injected I/O error an armed `io-error` / `short-write` site
/// produces.
pub fn injected_io_error(site: &str, kind: FaultKind) -> std::io::Error {
    std::io::Error::other(format!("injected {kind:?} fault at {site}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let p = FaultPlan::parse("spill.run.write:3:corrupt").unwrap();
        assert_eq!(
            p.specs,
            vec![FaultSpec {
                site: "spill.run.write".into(),
                trigger: Trigger::Nth(3),
                kind: FaultKind::Corrupt,
            }]
        );
        let p = FaultPlan::parse("spill.merge.*:always, spill.run.read:1:short-write").unwrap();
        assert_eq!(p.specs.len(), 2);
        assert_eq!(p.specs[0].trigger, Trigger::Always);
        assert_eq!(p.specs[0].kind, FaultKind::IoError);
        assert_eq!(p.specs[1].kind, FaultKind::ShortWrite);
        // Defaults: nth=1, kind=io-error.
        let p = FaultPlan::parse("spill.part.write").unwrap();
        assert_eq!(p.specs[0].trigger, Trigger::Nth(1));
        assert_eq!(p.specs[0].kind, FaultKind::IoError);
        assert!(FaultPlan::parse("").is_none());
        assert!(FaultPlan::parse("site:0").is_none());
        assert!(FaultPlan::parse("site:1:exotic").is_none());
    }

    #[test]
    fn wildcards_match_families() {
        let spec = FaultSpec {
            site: "spill.merge.*".into(),
            trigger: Trigger::Always,
            kind: FaultKind::IoError,
        };
        assert!(spec.matches(SITE_MERGE_CREATE));
        assert!(spec.matches(SITE_MERGE_WRITE));
        assert!(!spec.matches(SITE_RUN_WRITE));
        let all = FaultSpec {
            site: "*".into(),
            trigger: Trigger::Always,
            kind: FaultKind::IoError,
        };
        assert!(ALL_SITES.iter().all(|s| all.matches(s)));
    }

    #[test]
    fn nth_trigger_fires_exactly_once_and_guard_restores() {
        {
            let _g =
                FaultPlan::single(SITE_RUN_CREATE, Trigger::Nth(2), FaultKind::Corrupt).install();
            assert_eq!(check(SITE_RUN_CREATE), None);
            assert_eq!(check(SITE_RUN_CREATE), Some(FaultKind::Corrupt));
            assert_eq!(check(SITE_RUN_CREATE), None);
            assert_eq!(check(SITE_RUN_WRITE), None, "other sites stay clean");
        }
        assert_eq!(check(SITE_RUN_CREATE), None, "guard disarms on drop");
    }

    #[test]
    fn always_trigger_fires_every_time() {
        let _g = FaultPlan::single("spill.part.*", Trigger::Always, FaultKind::IoError).install();
        for _ in 0..3 {
            assert_eq!(check(SITE_PART_WRITE), Some(FaultKind::IoError));
            assert_eq!(check(SITE_PART_READ), Some(FaultKind::IoError));
        }
        assert_eq!(check(SITE_RUN_READ), None);
    }
}
