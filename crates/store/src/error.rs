//! Typed execution errors, cancellation and deadlines.
//!
//! The paper's argument is that join-graph isolation lets mature relational
//! machinery carry XQuery — and mature relational machinery survives I/O
//! faults, resource exhaustion and operator cancellation *per query*, not
//! per process.  [`ExecError`] is the query-scoped error every fallible
//! layer of the executor (spill I/O, the morsel crew, the operator
//! pipeline) propagates instead of panicking; [`CancelToken`] and
//! [`Interrupt`] carry the cooperative cancellation / deadline signal that
//! the morsel boundaries and the spill paths poll.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A query-scoped execution failure.
///
/// Everything is owned plain data (`Clone + Send`) so the error can cross
/// the morsel crew's thread boundary and be stored in caches or
/// higher-level error types without lifetime or `io::Error` cloning
/// headaches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// An I/O operation on a spill path failed.  `site` names the fault
    /// site (e.g. `spill.run.write`) so operators and tests can tell
    /// *which* disk interaction died.
    Io {
        /// The named fault site that failed.
        site: &'static str,
        /// The underlying I/O error, rendered.
        message: String,
    },
    /// A spill record failed its checksum or structural validation when
    /// read back — the file and byte offset identify the damage.
    Corrupt {
        /// Path of the damaged run file.
        file: String,
        /// Byte offset of the damaged record within the file.
        offset: u64,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A memory reservation could not be satisfied and no spill path was
    /// available to shed it.
    Budget {
        /// Bytes the operator asked for.
        requested: usize,
        /// The configured budget limit.
        limit: usize,
    },
    /// The query was cancelled via its [`CancelToken`].
    Cancelled,
    /// The query ran past its configured deadline (`XQJG_QUERY_TIMEOUT`),
    /// or waited in the admission queue past `XQJG_QUEUE_TIMEOUT`.
    Timeout {
        /// The configured limit, in milliseconds.
        limit_ms: u64,
    },
    /// The global admission controller's bounded wait queue is full — the
    /// service is oversubscribed beyond what queueing absorbs.  Retry
    /// later; nothing about the query itself is wrong.
    Overloaded {
        /// Queries already waiting for admission.
        queued: usize,
        /// The configured queue depth.
        depth: usize,
    },
}

impl ExecError {
    /// Build an [`ExecError::Io`] from a raw I/O error at a named site.
    pub fn io(site: &'static str, err: &std::io::Error) -> ExecError {
        ExecError::Io {
            site,
            message: err.to_string(),
        }
    }

    /// Is this failure worth retrying (a possibly transient I/O hiccup)?
    /// Corruption, cancellation and deadlines are not: retrying cannot
    /// repair a damaged record and must not extend a cancelled query.
    pub fn is_transient(&self) -> bool {
        matches!(self, ExecError::Io { .. })
    }

    /// Anchor a record-relative [`ExecError::Corrupt`] to its file: the
    /// codec reports offsets within one record buffer, the reader knows
    /// which file and at which base offset that buffer came from.  Errors
    /// already carrying a file, and non-corruption errors, pass through.
    pub fn located(self, file: &std::path::Path, base: u64) -> ExecError {
        match self {
            ExecError::Corrupt {
                file: f,
                offset,
                detail,
            } if f.is_empty() => ExecError::Corrupt {
                file: file.display().to_string(),
                offset: base + offset,
                detail,
            },
            other => other,
        }
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Io { site, message } => write!(f, "I/O failure at {site}: {message}"),
            ExecError::Corrupt {
                file,
                offset,
                detail,
            } => write!(
                f,
                "corrupt spill record in {file} at offset {offset}: {detail}"
            ),
            ExecError::Budget { requested, limit } => write!(
                f,
                "memory budget exhausted: requested {requested} bytes against a {limit}-byte limit"
            ),
            ExecError::Cancelled => write!(f, "query cancelled"),
            ExecError::Timeout { limit_ms } => {
                write!(f, "query timed out after {limit_ms} ms")
            }
            ExecError::Overloaded { queued, depth } => write!(
                f,
                "server overloaded: admission queue full ({queued} waiting, depth {depth})"
            ),
        }
    }
}

impl std::error::Error for ExecError {}

/// A shareable cancellation flag: clone it, hand a copy to another thread
/// (or keep one in a service layer), and [`CancelToken::cancel`] makes
/// every execution polling the token fail with [`ExecError::Cancelled`]
/// at its next morsel boundary or spill run.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation of every execution sharing this token.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Re-arm the token for the next statement (a cancel request applies
    /// to the statement it interrupted, not to every future one).
    pub fn clear(&self) {
        self.flag.store(false, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The per-execution interruption context: an optional shared
/// [`CancelToken`] plus an optional absolute deadline.  Checked at morsel
/// boundaries and once per spill run; both checks are a relaxed atomic
/// load (plus one `Instant::now` when a deadline is set), so the
/// uninterrupted path stays hot.
#[derive(Debug, Clone, Default)]
pub struct Interrupt {
    token: Option<CancelToken>,
    deadline: Option<Instant>,
    limit_ms: u64,
}

impl Interrupt {
    /// An interrupt context with the given token and time limit (the
    /// deadline starts counting now).
    pub fn new(token: Option<CancelToken>, timeout: Option<Duration>) -> Interrupt {
        Interrupt {
            token,
            deadline: timeout.map(|t| Instant::now() + t),
            limit_ms: timeout.map(|t| t.as_millis() as u64).unwrap_or(0),
        }
    }

    /// Fail fast when the execution has been cancelled or timed out.
    pub fn check(&self) -> Result<(), ExecError> {
        if self.token.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Err(ExecError::Cancelled);
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(ExecError::Timeout {
                limit_ms: self.limit_ms,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ExecError::Io {
            site: "spill.run.write",
            message: "disk full".into(),
        };
        assert!(e.to_string().contains("spill.run.write"));
        assert!(ExecError::Cancelled.to_string().contains("cancelled"));
        let c = ExecError::Corrupt {
            file: "/tmp/x.run".into(),
            offset: 42,
            detail: "bad tag".into(),
        };
        assert!(c.to_string().contains("offset 42"));
    }

    #[test]
    fn transience_is_io_only() {
        assert!(ExecError::io("spill.run.create", &std::io::Error::other("x")).is_transient());
        assert!(!ExecError::Cancelled.is_transient());
        assert!(!ExecError::Timeout { limit_ms: 5 }.is_transient());
        assert!(!ExecError::Corrupt {
            file: String::new(),
            offset: 0,
            detail: String::new()
        }
        .is_transient());
    }

    #[test]
    fn cancel_token_is_shared_and_clearable() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled());
        let i = Interrupt::new(Some(t.clone()), None);
        assert_eq!(i.check(), Err(ExecError::Cancelled));
        t.clear();
        assert_eq!(i.check(), Ok(()));
    }

    #[test]
    fn elapsed_deadline_times_out() {
        let i = Interrupt::new(None, Some(Duration::from_millis(0)));
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(i.check(), Err(ExecError::Timeout { limit_ms: 0 }));
        let relaxed = Interrupt::new(None, Some(Duration::from_secs(3600)));
        assert_eq!(relaxed.check(), Ok(()));
        assert_eq!(Interrupt::default().check(), Ok(()));
    }
}
