//! Typed column images of row tables — the representation the kernelized
//! hot paths run on.
//!
//! The shredded XML encoding is dominated by `i64` columns (`pre`, `size`,
//! `level`, surrogate ids) and low-cardinality strings (`name`, `kind`).
//! [`TypedColumns`] extracts, per column and lazily, either
//!
//! * a flat `Vec<i64>` image (every value is `Value::Int`, no NULLs), or
//! * a dictionary-coded image of an all-string column whose dictionary is
//!   *sorted*, so code order equals string order and code equality equals
//!   string equality,
//!
//! and leaves mixed/NULL-bearing columns untyped (`None`) — the scalar
//! [`Value`] path remains the semantics of record for those.  The compare,
//! equality and hash kernels in [`crate::kernel`] run over these images in
//! branch-free chunked loops; [`crate::Table::typed`] memoizes one image
//! per table and invalidates it on mutation.

use crate::table::Row;
use crate::value::Value;

/// A typed image of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedColumn {
    /// Every value in the column is `Value::Int`.
    Int(Vec<i64>),
    /// Every value is `Value::Str`.  `codes[i]` indexes into `dict`, and
    /// `dict` is sorted and deduplicated: comparing codes is comparing
    /// strings.
    Dict { codes: Vec<u32>, dict: Vec<String> },
}

impl TypedColumn {
    /// The `i64` image, when this is an all-integer column.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            TypedColumn::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The dictionary codes, when this is an all-string column.
    pub fn as_dict(&self) -> Option<(&[u32], &[String])> {
        match self {
            TypedColumn::Dict { codes, dict } => Some((codes, dict)),
            _ => None,
        }
    }

    /// Dictionary code of `s`, if it occurs in this column.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        match self {
            TypedColumn::Dict { dict, .. } => dict
                .binary_search_by(|d| d.as_str().cmp(s))
                .ok()
                .map(|i| i as u32),
            _ => None,
        }
    }

    /// Number of dictionary entries strictly smaller than `s` (the
    /// partition point): for any code `c`, `c < boundary` iff
    /// `dict[c] < s`.  Range predicates over dictionary codes reduce to
    /// integer comparisons against this boundary.
    pub fn dict_boundary(&self, s: &str) -> Option<u32> {
        match self {
            TypedColumn::Dict { dict, .. } => Some(dict.partition_point(|d| d.as_str() < s) as u32),
            _ => None,
        }
    }

    /// Build the typed image of column `col`, or `None` when the column is
    /// not uniformly typed.
    pub fn from_rows(rows: &[Row], col: usize) -> Option<TypedColumn> {
        if rows.is_empty() {
            return None;
        }
        match rows[0][col] {
            Value::Int(_) => {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    match r[col] {
                        Value::Int(i) => out.push(i),
                        _ => return None,
                    }
                }
                Some(TypedColumn::Int(out))
            }
            Value::Str(_) => {
                let mut strs: Vec<&str> = Vec::with_capacity(rows.len());
                for r in rows {
                    match &r[col] {
                        Value::Str(s) => strs.push(s),
                        _ => return None,
                    }
                }
                let mut dict: Vec<&str> = strs.clone();
                dict.sort_unstable();
                dict.dedup();
                let codes = strs
                    .iter()
                    .map(|s| dict.binary_search(s).expect("string in dictionary") as u32)
                    .collect();
                Some(TypedColumn::Dict {
                    codes,
                    dict: dict.into_iter().map(str::to_owned).collect(),
                })
            }
            _ => None,
        }
    }
}

/// The typed images of a table's columns (one slot per schema column;
/// `None` for columns without a uniform scalar type).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TypedColumns {
    cols: Vec<Option<TypedColumn>>,
}

impl TypedColumns {
    /// Build the typed image of every column of `rows`.
    pub fn build(arity: usize, rows: &[Row]) -> TypedColumns {
        TypedColumns {
            cols: (0..arity)
                .map(|c| TypedColumn::from_rows(rows, c))
                .collect(),
        }
    }

    /// The typed image of column `i`, if it has one.
    pub fn col(&self, i: usize) -> Option<&TypedColumn> {
        self.cols.get(i).and_then(|c| c.as_ref())
    }

    /// The `i64` image of column `i`, if it is all-integer.
    pub fn int_col(&self, i: usize) -> Option<&[i64]> {
        self.col(i).and_then(TypedColumn::as_int)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(3), Value::str("b"), Value::Dec(1.5)],
            vec![Value::Int(1), Value::str("a"), Value::Int(2)],
            vec![Value::Int(3), Value::str("b"), Value::Null],
        ]
    }

    #[test]
    fn classifies_columns_by_uniform_type() {
        let t = TypedColumns::build(3, &rows());
        assert_eq!(t.int_col(0), Some(&[3i64, 1, 3][..]));
        let (codes, dict) = t.col(1).unwrap().as_dict().unwrap();
        assert_eq!(dict, &["a".to_string(), "b".to_string()]);
        assert_eq!(codes, &[1, 0, 1]);
        assert!(t.col(2).is_none(), "mixed column stays untyped");
    }

    #[test]
    fn dictionary_order_equals_string_order() {
        let rows: Vec<Row> = ["pear", "apple", "fig", "apple"]
            .iter()
            .map(|s| vec![Value::str(*s)])
            .collect();
        let col = TypedColumn::from_rows(&rows, 0).unwrap();
        let (codes, dict) = col.as_dict().unwrap();
        for (i, r) in rows.iter().enumerate() {
            for (j, s) in rows.iter().enumerate() {
                let by_code = codes[i].cmp(&codes[j]);
                let by_str = r[0].cmp(&s[0]);
                assert_eq!(by_code, by_str, "rows {i} vs {j}");
            }
        }
        assert_eq!(
            col.code_of("fig"),
            Some(dict.iter().position(|d| d == "fig").unwrap() as u32)
        );
        assert_eq!(col.code_of("grape"), None);
        // Boundary: codes < boundary("fig") are exactly the strings < "fig".
        let b = col.dict_boundary("fig").unwrap();
        for (c, d) in dict.iter().enumerate() {
            assert_eq!((c as u32) < b, d.as_str() < "fig");
        }
        // A probe between dictionary entries still gets a usable boundary.
        let b = col.dict_boundary("grape").unwrap();
        for (c, d) in dict.iter().enumerate() {
            assert_eq!((c as u32) < b, d.as_str() < "grape");
        }
    }

    #[test]
    fn empty_and_null_columns_stay_untyped() {
        assert!(TypedColumn::from_rows(&[], 0).is_none());
        let rows = vec![vec![Value::Null], vec![Value::Int(1)]];
        assert!(TypedColumn::from_rows(&rows, 0).is_none());
    }
}
