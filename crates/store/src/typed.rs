//! Typed column images of row tables — the representation the kernelized
//! hot paths run on.
//!
//! The shredded XML encoding is dominated by `i64` columns (`pre`, `size`,
//! `level`, surrogate ids) and low-cardinality strings (`name`, `kind`).
//! [`TypedColumns`] extracts, per column and lazily, either
//!
//! * a flat `Vec<i64>` image (every non-NULL value is `Value::Int`), or
//! * a dictionary-coded image of a string column whose dictionary is
//!   *sorted*, so code order equals string order and code equality equals
//!   string equality,
//!
//! each carrying an optional **validity bitmask** ([`BitMask`], one bit
//! per row): a NULL-bearing column still builds an image — NULL slots
//! hold a sentinel value and a cleared validity bit, and every kernel in
//! [`crate::kernel`] gates its verdicts on that bit (NULL never matches a
//! comparison, never hashes as a join key, sorts first).  Only mixed-type
//! and all-NULL columns stay untyped (`None`) — the scalar [`Value`] path
//! remains the semantics of record for those.  [`crate::Table::typed`]
//! memoizes one image per table and invalidates it on mutation.

use crate::mask::BitMask;
use crate::table::Row;
use crate::value::Value;

/// A typed image of one column.
#[derive(Debug, Clone, PartialEq)]
pub enum TypedColumn {
    /// Every non-NULL value in the column is `Value::Int`.
    Int {
        /// The value image; NULL slots hold `0`.
        vals: Vec<i64>,
        /// Validity mask — `None` when the column bears no NULLs.
        validity: Option<BitMask>,
    },
    /// Every non-NULL value is `Value::Str`.  `codes[i]` indexes into
    /// `dict` (NULL slots hold code `0`), and `dict` is sorted and
    /// deduplicated: comparing codes is comparing strings.
    Dict {
        /// The code image; NULL slots hold `0`.
        codes: Vec<u32>,
        /// The sorted, deduplicated dictionary.
        dict: Vec<String>,
        /// Validity mask — `None` when the column bears no NULLs.
        validity: Option<BitMask>,
    },
}

impl TypedColumn {
    /// The `i64` image, when this is an all-integer column *without*
    /// NULLs (the legacy invariant — consumers that cannot gate on a
    /// validity mask use this accessor).
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            TypedColumn::Int {
                vals,
                validity: None,
            } => Some(vals),
            _ => None,
        }
    }

    /// The `i64` image plus its validity mask, when this is an integer
    /// column (NULL-bearing or not).
    pub fn as_int_nullable(&self) -> Option<(&[i64], Option<&BitMask>)> {
        match self {
            TypedColumn::Int { vals, validity } => Some((vals, validity.as_ref())),
            _ => None,
        }
    }

    /// The dictionary codes, when this is an all-string column *without*
    /// NULLs.
    pub fn as_dict(&self) -> Option<(&[u32], &[String])> {
        match self {
            TypedColumn::Dict {
                codes,
                dict,
                validity: None,
            } => Some((codes, dict)),
            _ => None,
        }
    }

    /// The dictionary image plus its validity mask, when this is a string
    /// column (NULL-bearing or not).
    pub fn as_dict_nullable(&self) -> Option<(&[u32], &[String], Option<&BitMask>)> {
        match self {
            TypedColumn::Dict {
                codes,
                dict,
                validity,
            } => Some((codes, dict, validity.as_ref())),
            _ => None,
        }
    }

    /// The column's validity mask, if it bears NULLs.
    pub fn validity(&self) -> Option<&BitMask> {
        match self {
            TypedColumn::Int { validity, .. } | TypedColumn::Dict { validity, .. } => {
                validity.as_ref()
            }
        }
    }

    /// Dictionary code of `s`, if it occurs in this column.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        match self {
            TypedColumn::Dict { dict, .. } => dict
                .binary_search_by(|d| d.as_str().cmp(s))
                .ok()
                .map(|i| i as u32),
            _ => None,
        }
    }

    /// Number of dictionary entries strictly smaller than `s` (the
    /// partition point): for any code `c`, `c < boundary` iff
    /// `dict[c] < s`.  Range predicates over dictionary codes reduce to
    /// integer comparisons against this boundary.
    pub fn dict_boundary(&self, s: &str) -> Option<u32> {
        match self {
            TypedColumn::Dict { dict, .. } => Some(dict.partition_point(|d| d.as_str() < s) as u32),
            _ => None,
        }
    }

    /// Build the typed image of column `col`, or `None` when the column
    /// is not uniformly typed (the type of the first non-NULL value
    /// decides; all-NULL and empty columns stay untyped — there is
    /// nothing for a kernel to compare).
    pub fn from_rows(rows: &[Row], col: usize) -> Option<TypedColumn> {
        let first = rows.iter().find(|r| !r[col].is_null())?;
        match first[col] {
            Value::Int(_) => {
                let mut vals = Vec::with_capacity(rows.len());
                let mut validity: Option<BitMask> = None;
                for (i, r) in rows.iter().enumerate() {
                    match r[col] {
                        Value::Int(v) => {
                            vals.push(v);
                            if let Some(m) = &mut validity {
                                m.push(true);
                            }
                        }
                        Value::Null => {
                            vals.push(0);
                            validity
                                .get_or_insert_with(|| BitMask::filled(i, true))
                                .push(false);
                        }
                        _ => return None,
                    }
                }
                Some(TypedColumn::Int { vals, validity })
            }
            Value::Str(_) => {
                let mut strs: Vec<Option<&str>> = Vec::with_capacity(rows.len());
                let mut validity: Option<BitMask> = None;
                for (i, r) in rows.iter().enumerate() {
                    match &r[col] {
                        Value::Str(s) => {
                            strs.push(Some(s));
                            if let Some(m) = &mut validity {
                                m.push(true);
                            }
                        }
                        Value::Null => {
                            strs.push(None);
                            validity
                                .get_or_insert_with(|| BitMask::filled(i, true))
                                .push(false);
                        }
                        _ => return None,
                    }
                }
                let mut dict: Vec<&str> = strs.iter().flatten().copied().collect();
                dict.sort_unstable();
                dict.dedup();
                let codes = strs
                    .iter()
                    .map(|s| match s {
                        Some(s) => dict.binary_search(s).expect("string in dictionary") as u32,
                        None => 0,
                    })
                    .collect();
                Some(TypedColumn::Dict {
                    codes,
                    dict: dict.into_iter().map(str::to_owned).collect(),
                    validity,
                })
            }
            _ => None,
        }
    }
}

/// The typed images of a table's columns (one slot per schema column;
/// `None` for columns without a uniform scalar type).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TypedColumns {
    cols: Vec<Option<TypedColumn>>,
}

impl TypedColumns {
    /// Build the typed image of every column of `rows`.
    pub fn build(arity: usize, rows: &[Row]) -> TypedColumns {
        TypedColumns {
            cols: (0..arity)
                .map(|c| TypedColumn::from_rows(rows, c))
                .collect(),
        }
    }

    /// The typed image of column `i`, if it has one.
    pub fn col(&self, i: usize) -> Option<&TypedColumn> {
        self.cols.get(i).and_then(|c| c.as_ref())
    }

    /// The `i64` image of column `i`, if it is all-integer without NULLs.
    pub fn int_col(&self, i: usize) -> Option<&[i64]> {
        self.col(i).and_then(TypedColumn::as_int)
    }

    /// The `i64` image of column `i` plus its validity mask, if it is an
    /// integer column (NULL-bearing or not).
    pub fn int_col_nullable(&self, i: usize) -> Option<(&[i64], Option<&BitMask>)> {
        self.col(i).and_then(TypedColumn::as_int_nullable)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<Row> {
        vec![
            vec![Value::Int(3), Value::str("b"), Value::Dec(1.5)],
            vec![Value::Int(1), Value::str("a"), Value::Int(2)],
            vec![Value::Int(3), Value::str("b"), Value::Null],
        ]
    }

    #[test]
    fn classifies_columns_by_uniform_type() {
        let t = TypedColumns::build(3, &rows());
        assert_eq!(t.int_col(0), Some(&[3i64, 1, 3][..]));
        let (codes, dict) = t.col(1).unwrap().as_dict().unwrap();
        assert_eq!(dict, &["a".to_string(), "b".to_string()]);
        assert_eq!(codes, &[1, 0, 1]);
        assert!(t.col(2).is_none(), "mixed column stays untyped");
    }

    #[test]
    fn dictionary_order_equals_string_order() {
        let rows: Vec<Row> = ["pear", "apple", "fig", "apple"]
            .iter()
            .map(|s| vec![Value::str(*s)])
            .collect();
        let col = TypedColumn::from_rows(&rows, 0).unwrap();
        let (codes, dict) = col.as_dict().unwrap();
        for (i, r) in rows.iter().enumerate() {
            for (j, s) in rows.iter().enumerate() {
                let by_code = codes[i].cmp(&codes[j]);
                let by_str = r[0].cmp(&s[0]);
                assert_eq!(by_code, by_str, "rows {i} vs {j}");
            }
        }
        assert_eq!(
            col.code_of("fig"),
            Some(dict.iter().position(|d| d == "fig").unwrap() as u32)
        );
        assert_eq!(col.code_of("grape"), None);
        // Boundary: codes < boundary("fig") are exactly the strings < "fig".
        let b = col.dict_boundary("fig").unwrap();
        for (c, d) in dict.iter().enumerate() {
            assert_eq!((c as u32) < b, d.as_str() < "fig");
        }
        // A probe between dictionary entries still gets a usable boundary.
        let b = col.dict_boundary("grape").unwrap();
        for (c, d) in dict.iter().enumerate() {
            assert_eq!((c as u32) < b, d.as_str() < "grape");
        }
    }

    #[test]
    fn null_columns_build_masked_images() {
        // Nothing to type: empty and all-NULL columns stay untyped.
        assert!(TypedColumn::from_rows(&[], 0).is_none());
        let all_null = vec![vec![Value::Null], vec![Value::Null]];
        assert!(TypedColumn::from_rows(&all_null, 0).is_none());

        // A NULL-bearing integer column images with a validity mask —
        // including a leading NULL (the first non-NULL value decides the
        // type).
        let rows = vec![vec![Value::Null], vec![Value::Int(1)], vec![Value::Int(7)]];
        let col = TypedColumn::from_rows(&rows, 0).unwrap();
        assert!(col.as_int().is_none(), "nullable image hides behind as_int");
        let (vals, validity) = col.as_int_nullable().unwrap();
        assert_eq!(vals, &[0i64, 1, 7]);
        let m = validity.expect("NULL-bearing column carries a mask");
        assert_eq!(
            (m.get(0), m.get(1), m.get(2), m.count_ones()),
            (false, true, true, 2)
        );

        // Same for strings: the NULL slot gets sentinel code 0 and a
        // cleared bit; the dictionary only holds real strings.
        let rows = vec![
            vec![Value::str("pear")],
            vec![Value::Null],
            vec![Value::str("apple")],
        ];
        let col = TypedColumn::from_rows(&rows, 0).unwrap();
        let (codes, dict, validity) = col.as_dict_nullable().unwrap();
        assert_eq!(dict, &["apple".to_string(), "pear".to_string()]);
        assert_eq!(codes, &[1, 0, 0]);
        let m = validity.expect("NULL-bearing column carries a mask");
        assert_eq!((m.get(0), m.get(1), m.get(2)), (true, false, true));

        // Mixed NULL + non-Int/Str still refuses an image.
        let rows = vec![vec![Value::Null], vec![Value::Dec(1.0)]];
        assert!(TypedColumn::from_rows(&rows, 0).is_none());
        let rows = vec![vec![Value::Int(1)], vec![Value::str("x")]];
        assert!(TypedColumn::from_rows(&rows, 0).is_none());
    }

    #[test]
    fn one_null_in_a_million_still_images() {
        // The regression the validity mask exists for: a single NULL used
        // to demote the whole column to the row path.
        const N: usize = 1_000_000;
        let rows: Vec<Row> = (0..N)
            .map(|i| {
                vec![if i == 123_456 {
                    Value::Null
                } else {
                    Value::Int(i as i64)
                }]
            })
            .collect();
        let col = TypedColumn::from_rows(&rows, 0).expect("column images despite the NULL");
        let (vals, validity) = col.as_int_nullable().unwrap();
        assert_eq!(vals.len(), N);
        let m = validity.expect("mask present");
        assert_eq!(m.count_ones(), N - 1);
        assert!(!m.get(123_456));
        assert_eq!(vals[123_456], 0, "NULL slot holds the sentinel");
    }
}
