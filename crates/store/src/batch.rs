//! The pipelined execution substrate: batches and the pull-based
//! [`Operator`] interface.
//!
//! All three evaluation paths of the system — the isolated join graph
//! (`xqjg-engine`), the stacked-plan evaluator (`xqjg-algebra`), and the
//! pureXML-style navigational baseline (`xqjg-purexml`) — execute as trees
//! of operators that exchange fixed-capacity [`Batch`]es through the
//! classical `open` / `next_batch` / `close` protocol.  Pipelining replaces
//! the materialize-everything evaluation the seed shipped with: an operator
//! only ever holds one batch of its input (plus whatever a genuine pipeline
//! breaker — hash build, sort — must buffer by nature).
//!
//! The batch capacity is a runtime parameter (defaulting to
//! [`BATCH_CAPACITY`]) so the benchmark harness can sweep it; see the
//! [`crate::morsel`] module for the parallel-execution layer that splits
//! leaf scans into morsels and merges per-worker counters back together.
//!
//! Every operator keeps its own [`OpStats`] work counters and reports them
//! into a shared [`StatsSink`] on `close`, children first, which is how
//! `EXPLAIN` output and the benchmark harness see per-operator rows
//! in/out, probe and batch counts.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Default number of tuples a [`Batch`] holds at most.  Small enough that a
/// batch of row ids stays cache-resident, large enough to amortize the
/// virtual dispatch of `next_batch` over many tuples.
pub const BATCH_CAPACITY: usize = 1024;

/// A fixed-capacity batch of tuples flowing between operators.
///
/// The tuple type is generic: the join-graph executor moves bindings (one
/// row id per bound alias), the plan tail and the algebra evaluator move
/// computed value rows, and the navigational baseline moves node ranks.
#[derive(Debug, Clone)]
pub struct Batch<T> {
    items: Vec<T>,
    cap: usize,
}

impl<T> Batch<T> {
    /// An empty batch with room for [`BATCH_CAPACITY`] tuples.
    pub fn new() -> Self {
        Self::with_capacity(BATCH_CAPACITY)
    }

    /// An empty batch with room for `cap` tuples (`cap` ≥ 1).
    pub fn with_capacity(cap: usize) -> Self {
        debug_assert!(cap > 0, "batch capacity must be positive");
        Batch {
            items: Vec::with_capacity(cap.max(1)),
            cap: cap.max(1),
        }
    }

    /// Build a batch directly from a tuple vector.  The batch is sized to
    /// the default capacity, or to the vector's length when that is larger
    /// — producers slicing their own input never overflow.
    pub fn from_items(items: Vec<T>) -> Self {
        let cap = items.len().max(BATCH_CAPACITY);
        Batch { items, cap }
    }

    /// Append a tuple.
    ///
    /// Producers must check [`Batch::is_full`] and hand the batch
    /// downstream first; pushing into a full batch is a logic error
    /// (checked in debug builds only — this sits on the per-tuple hot
    /// path).
    pub fn push(&mut self, item: T) {
        debug_assert!(!self.is_full(), "batch overflow: push into a full batch");
        self.items.push(item);
    }

    /// Bulk-append tuples from a slice, up to the remaining capacity.
    /// Returns how many tuples were consumed — the caller advances its
    /// cursor by that amount.  This is the leaf-scan fast path: one
    /// `memcpy`-style extend instead of a per-tuple `push`.
    pub fn fill_from_slice(&mut self, src: &[T]) -> usize
    where
        T: Clone,
    {
        let n = (self.cap - self.items.len()).min(src.len());
        self.items.extend_from_slice(&src[..n]);
        n
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Has the batch reached capacity?
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.cap
    }

    /// The number of tuples this batch can hold.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// The buffered tuples.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Keep only the tuples whose index appears in the (ascending)
    /// selection vector.  Survivors are compacted in place — dropped
    /// tuples are never cloned or re-materialized, which is how the
    /// row-batch world consumes a selection vector computed over borrowed
    /// tuples (see the σ operator of the algebra evaluator).
    pub fn retain_selected(&mut self, sel: &[u32]) {
        debug_assert!(
            sel.windows(2).all(|w| w[0] < w[1]),
            "selection not ascending"
        );
        let mut sel_pos = 0usize;
        let mut index = 0u32;
        self.items.retain(|_| {
            let keep = sel.get(sel_pos) == Some(&index);
            if keep {
                sel_pos += 1;
            }
            index += 1;
            keep
        });
    }

    /// Consume the batch, yielding its tuples.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for Batch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IntoIterator for Batch<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Work counters of a single operator instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label as it appears in EXPLAIN output (e.g. `IXSCAN(d2)`).
    pub name: String,
    /// Tuples pulled from the operator's input(s).
    pub rows_in: usize,
    /// Tuples handed to the operator's consumer.
    pub rows_out: usize,
    /// Batches handed to the operator's consumer.
    pub batches: usize,
    /// Probe operations performed (index nested-loop lookups, hash-table
    /// probes).
    pub probes: usize,
    /// Rows buffered by a pipeline breaker (hash-join build side, sort
    /// input).
    pub build_rows: usize,
    /// Build-side constructions satisfied from the session build cache
    /// instead of being recomputed (hash joins only).
    pub cache_hits: usize,
    /// Sorted runs / partition files the operator wrote to disk under
    /// memory pressure (SORT run generation, Grace build partitioning —
    /// repartitioning passes count, they are real I/O).
    pub spill_runs: usize,
    /// Bytes the operator wrote to disk under memory pressure.
    pub spill_bytes: usize,
    /// Leaf partitions of a Grace-partitioned (spilled) hash-join build
    /// side; zero for in-memory builds.
    pub partitions: usize,
    /// Transient spill-write failures the operator retried past (see
    /// `XQJG_SPILL_RETRIES`); zero on a healthy disk.
    pub retries: usize,
    /// Rows the operator pushed through the typed-column kernels (compare/
    /// hash/sort over `i64` or dictionary-code images) instead of scalar
    /// [`crate::Value`] operations.  Zero when `XQJG_TYPED_KERNELS=0`, when
    /// the relevant columns are not uniformly typed, or — on the SORT tail —
    /// when the sorter went external (spilled runs merge through the scalar
    /// record comparator).  Deterministic for a fixed configuration: the
    /// engagement decision is per operator, never per batch, so the counter
    /// is invariant across DOP and morsel/batch sizing like every other
    /// actual.
    pub kernel_rows: usize,
}

impl OpStats {
    /// A zeroed counter set for the named operator.
    pub fn named(name: impl Into<String>) -> Self {
        OpStats {
            name: name.into(),
            ..OpStats::default()
        }
    }

    /// Fold the counters another worker recorded for the *same logical
    /// operator* into this one.  `batches` is summed raw here; use
    /// [`merge_worker_stats`] to normalize it to the canonical
    /// single-worker count after all workers are folded.
    pub fn absorb(&mut self, other: &OpStats) {
        debug_assert_eq!(
            self.name, other.name,
            "merging stats of different operators"
        );
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
        self.batches += other.batches;
        self.probes += other.probes;
        self.build_rows += other.build_rows;
        self.cache_hits += other.cache_hits;
        self.spill_runs += other.spill_runs;
        self.spill_bytes += other.spill_bytes;
        self.partitions += other.partitions;
        self.retries += other.retries;
        self.kernel_rows += other.kernel_rows;
    }

    /// A copy with the memory-governor-dependent counters zeroed — the
    /// equality the spill-parity suite uses: execution under any memory
    /// budget must match the unlimited-budget actuals *modulo* how much was
    /// spilled.  `kernel_rows` is zeroed too: the SORT tail's typed kernel
    /// only engages when the sorter stayed in memory, so kernel engagement
    /// is itself a governor effect (and the typed-parity suite compares the
    /// typed and scalar paths through this same normalization).
    pub fn sans_spill(&self) -> OpStats {
        OpStats {
            spill_runs: 0,
            spill_bytes: 0,
            partitions: 0,
            retries: 0,
            kernel_rows: 0,
            ..self.clone()
        }
    }

    /// One-line rendering used by EXPLAIN and the bench harness.
    pub fn render(&self) -> String {
        let mut parts = vec![
            format!("rows_out={}", self.rows_out),
            format!("batches={}", self.batches),
        ];
        if self.rows_in > 0 {
            parts.insert(0, format!("rows_in={}", self.rows_in));
        }
        if self.probes > 0 {
            parts.push(format!("probes={}", self.probes));
        }
        if self.build_rows > 0 {
            parts.push(format!("build_rows={}", self.build_rows));
        }
        if self.cache_hits > 0 {
            parts.push(format!("cache_hits={}", self.cache_hits));
        }
        if self.spill_runs > 0 {
            parts.push(format!("spill_runs={}", self.spill_runs));
        }
        if self.spill_bytes > 0 {
            parts.push(format!("spill_bytes={}", self.spill_bytes));
        }
        if self.partitions > 0 {
            parts.push(format!("partitions={}", self.partitions));
        }
        if self.retries > 0 {
            parts.push(format!("retries={}", self.retries));
        }
        if self.kernel_rows > 0 {
            parts.push(format!("kernel_rows={}", self.kernel_rows));
        }
        if self.rows_in > 0 {
            parts.push(format!(
                "sel={:.3}",
                self.rows_out as f64 / self.rows_in as f64
            ));
        }
        if self.batches > 0 {
            parts.push(format!(
                "avg_vec={:.1}",
                self.rows_out as f64 / self.batches as f64
            ));
        }
        format!("{}: {}", self.name, parts.join(" "))
    }
}

/// Merge the per-operator counters several workers (or morsel pipelines)
/// recorded for the *same operator tree* into the counters a single
/// sequential execution would have produced.
///
/// Row, probe and build counters are summed positionally.  The batch count
/// is recomputed as `ceil(rows_out / batch_capacity)`: every operator of
/// the substrate fills each batch to capacity before handing it downstream
/// (only the final batch may run short), so that expression *is* the batch
/// count of a DOP = 1 execution — which keeps EXPLAIN actuals byte-identical
/// across degrees of parallelism.
pub fn merge_worker_stats(per_worker: &[Vec<OpStats>], batch_capacity: usize) -> Vec<OpStats> {
    let cap = batch_capacity.max(1);
    let mut iter = per_worker.iter();
    let mut merged: Vec<OpStats> = match iter.next() {
        Some(first) => first.clone(),
        None => return Vec::new(),
    };
    for worker in iter {
        assert_eq!(
            merged.len(),
            worker.len(),
            "workers report differently-shaped operator trees"
        );
        for (acc, op) in merged.iter_mut().zip(worker) {
            acc.absorb(op);
        }
    }
    for op in &mut merged {
        op.batches = op.rows_out.div_ceil(cap);
    }
    merged
}

/// Shared collection point for per-operator counters: every operator pushes
/// its [`OpStats`] here when it is closed (children before parents).
///
/// Deliberately *not* thread-safe: in parallel execution each worker owns a
/// private sink created inside its thread, and the harvested `Vec<OpStats>`
/// (plain data, `Send`) is merged across workers via
/// [`merge_worker_stats`] — workers record locally, the merge happens once
/// at close.
pub type StatsSink = Rc<RefCell<Vec<OpStats>>>;

/// A fresh, empty stats sink.
pub fn new_stats_sink() -> StatsSink {
    Rc::new(RefCell::new(Vec::new()))
}

/// The pull-based physical operator interface (volcano-style, but a batch
/// of tuples per call instead of one).
pub trait Operator {
    /// The tuple type this operator produces.
    type Item;

    /// Prepare for producing tuples (build hash tables, position scans).
    fn open(&mut self);

    /// Produce the next batch, or `None` once the input is exhausted.
    /// Returned batches are non-empty.
    fn next_batch(&mut self) -> Option<Batch<Self::Item>>;

    /// Release resources and report counters to the stats sink.
    fn close(&mut self);

    /// The operator's current work counters.
    fn stats(&self) -> OpStats;
}

/// A heap-allocated operator, the form operator trees are composed from.
pub type BoxedOperator<'a, T> = Box<dyn Operator<Item = T> + 'a>;

/// Drive an operator tree to completion: `open`, pull every batch, `close`,
/// returning all produced tuples.
pub fn drain<T>(op: &mut dyn Operator<Item = T>) -> Vec<T> {
    op.open();
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch() {
        out.extend(batch);
    }
    op.close();
    out
}

/// Fill a batch from a pending queue, invoking `refill` to replenish the
/// queue — one input step per call — whenever it runs dry.  `refill`
/// returns `false` once the input is exhausted.  This is the shared
/// produce-consume loop of every expanding operator (joins probing an
/// outer binding into several matches, traversals expanding a segment into
/// its result nodes).  Batches are filled to the default
/// [`BATCH_CAPACITY`]; see [`fill_from_pending_with_capacity`] for the
/// runtime-capacity variant.
pub fn fill_from_pending<T>(
    pending: &mut VecDeque<T>,
    refill: impl FnMut(&mut VecDeque<T>) -> bool,
) -> Option<Batch<T>> {
    fill_from_pending_with_capacity(BATCH_CAPACITY, pending, refill)
}

/// [`fill_from_pending`] with a caller-chosen batch capacity.
pub fn fill_from_pending_with_capacity<T>(
    cap: usize,
    pending: &mut VecDeque<T>,
    mut refill: impl FnMut(&mut VecDeque<T>) -> bool,
) -> Option<Batch<T>> {
    let mut out: Batch<T> = Batch::with_capacity(cap);
    while !out.is_full() {
        if let Some(item) = pending.pop_front() {
            out.push(item);
            continue;
        }
        if !refill(pending) {
            break;
        }
    }
    (!out.is_empty()).then_some(out)
}

/// A source operator emitting an owned vector of tuples in batches.  The
/// universal leaf for pre-computed inputs (memoized sub-plans, literal
/// tables, index postings).
pub struct VecSource<T> {
    items: Vec<T>,
    pos: usize,
    cap: usize,
    stats: OpStats,
    sink: Option<StatsSink>,
}

impl<T> VecSource<T> {
    /// Create a source over the given tuples.
    pub fn new(name: impl Into<String>, items: Vec<T>, sink: Option<StatsSink>) -> Self {
        VecSource {
            items,
            pos: 0,
            cap: BATCH_CAPACITY,
            stats: OpStats::named(name),
            sink,
        }
    }

    /// Emit batches of at most `cap` tuples instead of the default
    /// [`BATCH_CAPACITY`].
    pub fn with_batch_capacity(mut self, cap: usize) -> Self {
        self.cap = cap.max(1);
        self
    }
}

impl<T: Clone> Operator for VecSource<T> {
    type Item = T;

    fn open(&mut self) {
        self.pos = 0;
    }

    fn next_batch(&mut self) -> Option<Batch<T>> {
        if self.pos >= self.items.len() {
            return None;
        }
        let mut batch = Batch::with_capacity(self.cap);
        self.pos += batch.fill_from_slice(&self.items[self.pos..]);
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().push(self.stats.clone());
        }
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_capacity_enforced() {
        let mut b: Batch<usize> = Batch::new();
        for i in 0..BATCH_CAPACITY {
            b.push(i);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), BATCH_CAPACITY);
        assert_eq!(b.capacity(), BATCH_CAPACITY);
    }

    #[test]
    #[cfg_attr(not(debug_assertions), ignore = "overflow check is debug-only")]
    #[should_panic(expected = "batch overflow")]
    fn batch_overflow_panics_in_debug_builds() {
        let mut b: Batch<usize> = Batch::new();
        for i in 0..=BATCH_CAPACITY {
            b.push(i);
        }
    }

    #[test]
    fn runtime_capacity_bounds_the_batch() {
        let mut b: Batch<usize> = Batch::with_capacity(3);
        assert_eq!(b.capacity(), 3);
        b.push(1);
        b.push(2);
        assert!(!b.is_full());
        b.push(3);
        assert!(b.is_full());
    }

    #[test]
    fn fill_from_slice_respects_capacity_and_reports_consumption() {
        let mut b: Batch<usize> = Batch::with_capacity(4);
        b.push(0);
        let src: Vec<usize> = (1..10).collect();
        let n = b.fill_from_slice(&src);
        assert_eq!(n, 3);
        assert_eq!(b.items(), &[0, 1, 2, 3]);
        assert!(b.is_full());
        assert_eq!(b.fill_from_slice(&src), 0);
    }

    #[test]
    fn retain_selected_compacts_in_place() {
        let mut b = Batch::from_items((0..8).collect::<Vec<_>>());
        b.retain_selected(&[1, 4, 7]);
        assert_eq!(b.items(), &[1, 4, 7]);
        b.retain_selected(&[]);
        assert!(b.is_empty());
    }

    #[test]
    fn from_items_grows_capacity_to_fit() {
        let b = Batch::from_items((0..BATCH_CAPACITY + 5).collect::<Vec<_>>());
        assert_eq!(b.len(), BATCH_CAPACITY + 5);
        assert!(b.is_full());
    }

    #[test]
    fn vec_source_emits_in_batches_and_reports_stats() {
        let n = BATCH_CAPACITY * 2 + 7;
        let sink = new_stats_sink();
        let mut src = VecSource::new("SRC", (0..n).collect::<Vec<_>>(), Some(sink.clone()));
        let out = drain(&mut src);
        assert_eq!(out.len(), n);
        assert_eq!(out[0], 0);
        assert_eq!(out[n - 1], n - 1);
        let stats = sink.borrow();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].rows_out, n);
        assert_eq!(stats[0].batches, 3);
    }

    #[test]
    fn vec_source_honors_runtime_batch_capacity() {
        let mut src =
            VecSource::new("SRC", (0..10).collect::<Vec<_>>(), None).with_batch_capacity(4);
        let mut batches = 0;
        src.open();
        while let Some(b) = src.next_batch() {
            assert!(b.len() <= 4);
            batches += 1;
        }
        src.close();
        assert_eq!(batches, 3);
    }

    #[test]
    fn empty_source_produces_no_batches() {
        let mut src: VecSource<usize> = VecSource::new("SRC", vec![], None);
        assert!(drain(&mut src).is_empty());
        assert_eq!(src.stats().batches, 0);
    }

    #[test]
    fn fill_from_pending_drains_queue_then_refills() {
        let mut pending: VecDeque<usize> = VecDeque::from(vec![1, 2]);
        let mut inputs = vec![vec![3, 4], vec![], vec![5]].into_iter();
        let mut collected = Vec::new();
        while let Some(batch) = fill_from_pending(&mut pending, |p| match inputs.next() {
            Some(items) => {
                p.extend(items);
                true
            }
            None => false,
        }) {
            collected.extend(batch);
        }
        assert_eq!(collected, vec![1, 2, 3, 4, 5]);
        assert!(pending.is_empty());
    }

    #[test]
    fn fill_from_pending_with_capacity_caps_each_batch() {
        let mut pending: VecDeque<usize> = VecDeque::from((0..7).collect::<Vec<_>>());
        let mut sizes = Vec::new();
        while let Some(batch) = fill_from_pending_with_capacity(3, &mut pending, |_| false) {
            sizes.push(batch.len());
        }
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn merge_worker_stats_sums_counters_and_normalizes_batches() {
        let mk = |rows_out: usize, batches: usize, probes: usize| {
            let mut s = OpStats::named("NLJOIN(d2)");
            s.rows_in = rows_out / 2;
            s.rows_out = rows_out;
            s.batches = batches;
            s.probes = probes;
            s
        };
        // Two workers, each with a partial final batch: raw batch counts
        // (2 + 2) exceed the canonical sequential count ceil(900/512) = 2.
        let merged = merge_worker_stats(&[vec![mk(500, 2, 10)], vec![mk(400, 2, 7)]], 512);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].rows_out, 900);
        assert_eq!(merged[0].rows_in, 450);
        assert_eq!(merged[0].probes, 17);
        assert_eq!(merged[0].batches, 2, "batches normalized to ceil(900/512)");
        // Zero-row operators report zero batches.
        let zero = merge_worker_stats(&[vec![mk(0, 0, 0)], vec![mk(0, 0, 0)]], 512);
        assert_eq!(zero[0].batches, 0);
        assert!(merge_worker_stats(&[], 512).is_empty());
    }

    #[test]
    fn opstats_render_mentions_counters() {
        let mut s = OpStats::named("HSJOIN(d2)");
        s.rows_in = 10;
        s.rows_out = 4;
        s.batches = 1;
        s.probes = 10;
        s.build_rows = 6;
        let r = s.render();
        assert!(r.contains("HSJOIN(d2)"));
        assert!(r.contains("rows_in=10"));
        assert!(r.contains("probes=10"));
        assert!(r.contains("build_rows=6"));
    }
}
