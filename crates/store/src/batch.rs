//! The pipelined execution substrate: batches and the pull-based
//! [`Operator`] interface.
//!
//! All three evaluation paths of the system — the isolated join graph
//! (`xqjg-engine`), the stacked-plan evaluator (`xqjg-algebra`), and the
//! pureXML-style navigational baseline (`xqjg-purexml`) — execute as trees
//! of operators that exchange fixed-capacity [`Batch`]es through the
//! classical `open` / `next_batch` / `close` protocol.  Pipelining replaces
//! the materialize-everything evaluation the seed shipped with: an operator
//! only ever holds [`BATCH_CAPACITY`] tuples of its input (plus whatever a
//! genuine pipeline breaker — hash build, sort — must buffer by nature).
//!
//! Every operator keeps its own [`OpStats`] work counters and reports them
//! into a shared [`StatsSink`] on `close`, children first, which is how
//! `EXPLAIN` output and the benchmark harness see per-operator rows
//! in/out, probe and batch counts.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Number of tuples a [`Batch`] holds at most.  Small enough that a batch of
/// row ids stays cache-resident, large enough to amortize the virtual
/// dispatch of `next_batch` over many tuples.
pub const BATCH_CAPACITY: usize = 1024;

/// A fixed-capacity batch of tuples flowing between operators.
///
/// The tuple type is generic: the join-graph executor moves bindings (one
/// row id per bound alias), the plan tail and the algebra evaluator move
/// computed value rows, and the navigational baseline moves node ranks.
#[derive(Debug, Clone)]
pub struct Batch<T> {
    items: Vec<T>,
}

impl<T> Batch<T> {
    /// An empty batch with room for [`BATCH_CAPACITY`] tuples.
    pub fn new() -> Self {
        Batch {
            items: Vec::with_capacity(BATCH_CAPACITY),
        }
    }

    /// Build a batch directly from at most [`BATCH_CAPACITY`] tuples.
    ///
    /// # Panics
    /// Panics when more tuples are supplied than a batch may hold.
    pub fn from_items(items: Vec<T>) -> Self {
        assert!(
            items.len() <= BATCH_CAPACITY,
            "batch overflow: {} tuples exceed the {BATCH_CAPACITY}-tuple capacity",
            items.len()
        );
        Batch { items }
    }

    /// Append a tuple.
    ///
    /// # Panics
    /// Panics when the batch is already full — producers must check
    /// [`Batch::is_full`] and hand the batch downstream first.
    pub fn push(&mut self, item: T) {
        assert!(!self.is_full(), "batch overflow: push into a full batch");
        self.items.push(item);
    }

    /// Number of tuples in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Has the batch reached capacity?
    pub fn is_full(&self) -> bool {
        self.items.len() >= BATCH_CAPACITY
    }

    /// The buffered tuples.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consume the batch, yielding its tuples.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }
}

impl<T> Default for Batch<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> IntoIterator for Batch<T> {
    type Item = T;
    type IntoIter = std::vec::IntoIter<T>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

/// Work counters of a single operator instance.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label as it appears in EXPLAIN output (e.g. `IXSCAN(d2)`).
    pub name: String,
    /// Tuples pulled from the operator's input(s).
    pub rows_in: usize,
    /// Tuples handed to the operator's consumer.
    pub rows_out: usize,
    /// Batches handed to the operator's consumer.
    pub batches: usize,
    /// Probe operations performed (index nested-loop lookups, hash-table
    /// probes).
    pub probes: usize,
    /// Rows buffered by a pipeline breaker (hash-join build side, sort
    /// input).
    pub build_rows: usize,
}

impl OpStats {
    /// A zeroed counter set for the named operator.
    pub fn named(name: impl Into<String>) -> Self {
        OpStats {
            name: name.into(),
            ..OpStats::default()
        }
    }

    /// One-line rendering used by EXPLAIN and the bench harness.
    pub fn render(&self) -> String {
        let mut parts = vec![
            format!("rows_out={}", self.rows_out),
            format!("batches={}", self.batches),
        ];
        if self.rows_in > 0 {
            parts.insert(0, format!("rows_in={}", self.rows_in));
        }
        if self.probes > 0 {
            parts.push(format!("probes={}", self.probes));
        }
        if self.build_rows > 0 {
            parts.push(format!("build_rows={}", self.build_rows));
        }
        format!("{}: {}", self.name, parts.join(" "))
    }
}

/// Shared collection point for per-operator counters: every operator pushes
/// its [`OpStats`] here when it is closed (children before parents).
pub type StatsSink = Rc<RefCell<Vec<OpStats>>>;

/// A fresh, empty stats sink.
pub fn new_stats_sink() -> StatsSink {
    Rc::new(RefCell::new(Vec::new()))
}

/// The pull-based physical operator interface (volcano-style, but a batch
/// of tuples per call instead of one).
pub trait Operator {
    /// The tuple type this operator produces.
    type Item;

    /// Prepare for producing tuples (build hash tables, position scans).
    fn open(&mut self);

    /// Produce the next batch, or `None` once the input is exhausted.
    /// Returned batches are non-empty.
    fn next_batch(&mut self) -> Option<Batch<Self::Item>>;

    /// Release resources and report counters to the stats sink.
    fn close(&mut self);

    /// The operator's current work counters.
    fn stats(&self) -> OpStats;
}

/// A heap-allocated operator, the form operator trees are composed from.
pub type BoxedOperator<'a, T> = Box<dyn Operator<Item = T> + 'a>;

/// Drive an operator tree to completion: `open`, pull every batch, `close`,
/// returning all produced tuples.
pub fn drain<T>(op: &mut dyn Operator<Item = T>) -> Vec<T> {
    op.open();
    let mut out = Vec::new();
    while let Some(batch) = op.next_batch() {
        out.extend(batch);
    }
    op.close();
    out
}

/// Fill a batch from a pending queue, invoking `refill` to replenish the
/// queue — one input step per call — whenever it runs dry.  `refill`
/// returns `false` once the input is exhausted.  This is the shared
/// produce-consume loop of every expanding operator (joins probing an
/// outer binding into several matches, traversals expanding a segment into
/// its result nodes).
pub fn fill_from_pending<T>(
    pending: &mut VecDeque<T>,
    mut refill: impl FnMut(&mut VecDeque<T>) -> bool,
) -> Option<Batch<T>> {
    let mut out: Batch<T> = Batch::new();
    while !out.is_full() {
        if let Some(item) = pending.pop_front() {
            out.push(item);
            continue;
        }
        if !refill(pending) {
            break;
        }
    }
    (!out.is_empty()).then_some(out)
}

/// A source operator emitting an owned vector of tuples in batches.  The
/// universal leaf for pre-computed inputs (memoized sub-plans, literal
/// tables, index postings).
pub struct VecSource<T> {
    items: Vec<T>,
    pos: usize,
    stats: OpStats,
    sink: Option<StatsSink>,
}

impl<T> VecSource<T> {
    /// Create a source over the given tuples.
    pub fn new(name: impl Into<String>, items: Vec<T>, sink: Option<StatsSink>) -> Self {
        VecSource {
            items,
            pos: 0,
            stats: OpStats::named(name),
            sink,
        }
    }
}

impl<T: Clone> Operator for VecSource<T> {
    type Item = T;

    fn open(&mut self) {
        self.pos = 0;
    }

    fn next_batch(&mut self) -> Option<Batch<T>> {
        if self.pos >= self.items.len() {
            return None;
        }
        let end = (self.pos + BATCH_CAPACITY).min(self.items.len());
        let batch = Batch::from_items(self.items[self.pos..end].to_vec());
        self.pos = end;
        self.stats.rows_out += batch.len();
        self.stats.batches += 1;
        Some(batch)
    }

    fn close(&mut self) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().push(self.stats.clone());
        }
    }

    fn stats(&self) -> OpStats {
        self.stats.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_capacity_enforced() {
        let mut b: Batch<usize> = Batch::new();
        for i in 0..BATCH_CAPACITY {
            b.push(i);
        }
        assert!(b.is_full());
        assert_eq!(b.len(), BATCH_CAPACITY);
    }

    #[test]
    #[should_panic(expected = "batch overflow")]
    fn batch_overflow_panics() {
        let mut b: Batch<usize> = Batch::new();
        for i in 0..=BATCH_CAPACITY {
            b.push(i);
        }
    }

    #[test]
    fn vec_source_emits_in_batches_and_reports_stats() {
        let n = BATCH_CAPACITY * 2 + 7;
        let sink = new_stats_sink();
        let mut src = VecSource::new("SRC", (0..n).collect::<Vec<_>>(), Some(sink.clone()));
        let out = drain(&mut src);
        assert_eq!(out.len(), n);
        assert_eq!(out[0], 0);
        assert_eq!(out[n - 1], n - 1);
        let stats = sink.borrow();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].rows_out, n);
        assert_eq!(stats[0].batches, 3);
    }

    #[test]
    fn empty_source_produces_no_batches() {
        let mut src: VecSource<usize> = VecSource::new("SRC", vec![], None);
        assert!(drain(&mut src).is_empty());
        assert_eq!(src.stats().batches, 0);
    }

    #[test]
    fn fill_from_pending_drains_queue_then_refills() {
        let mut pending: VecDeque<usize> = VecDeque::from(vec![1, 2]);
        let mut inputs = vec![vec![3, 4], vec![], vec![5]].into_iter();
        let mut collected = Vec::new();
        while let Some(batch) = fill_from_pending(&mut pending, |p| match inputs.next() {
            Some(items) => {
                p.extend(items);
                true
            }
            None => false,
        }) {
            collected.extend(batch);
        }
        assert_eq!(collected, vec![1, 2, 3, 4, 5]);
        assert!(pending.is_empty());
    }

    #[test]
    fn opstats_render_mentions_counters() {
        let mut s = OpStats::named("HSJOIN(d2)");
        s.rows_in = 10;
        s.rows_out = 4;
        s.batches = 1;
        s.probes = 10;
        s.build_rows = 6;
        let r = s.render();
        assert!(r.contains("HSJOIN(d2)"));
        assert!(r.contains("rows_in=10"));
        assert!(r.contains("probes=10"));
        assert!(r.contains("build_rows=6"));
    }
}
