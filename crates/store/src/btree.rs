//! A composite-key B+tree.
//!
//! This is the "vanilla B-tree" the paper's whole argument rests on: the
//! only index structure the relational back-end needs to act as an XQuery
//! runtime.  Keys are tuples of [`Value`]s (e.g. `(name, kind, pre + size,
//! level)` for the `nkspl` index of Table VI), entries map a key to the row
//! id of a `doc`-table row, and range scans support partially specified
//! bounds (key prefixes) — that is exactly the access pattern of the
//! half-open `(pre◦, pre◦ + size◦]` interval predicates of Fig. 3.
//!
//! The implementation is an arena-based B+tree with linked leaves, insert
//! and bulk-load paths, and point/range scan operations.  There is no
//! delete operation: the XML encoding is read-only after document shredding
//! (documents are replaced wholesale, as in the paper's setup).

use crate::value::Value;
use std::cmp::Ordering;
use std::ops::Bound;

/// A composite index key.
pub type Key = Vec<Value>;

/// Maximum number of keys in a node before it splits.
const ORDER: usize = 64;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<Key>,
        rows: Vec<usize>,
        next: Option<usize>,
    },
    Internal {
        /// `separators[i]` is the smallest key reachable via `children[i+1]`.
        separators: Vec<Key>,
        children: Vec<usize>,
    },
}

/// A B+tree multi-map from composite keys to row ids.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: usize,
    len: usize,
    height: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BPlusTree {
    /// Create an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf {
                keys: Vec::new(),
                rows: Vec::new(),
                next: None,
            }],
            root: 0,
            len: 0,
            height: 1,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the tree empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree (1 = a single leaf).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of nodes ("pages") — input to the cost model.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Bulk-load a tree from entries.  The entries are sorted internally;
    /// this is the preferred construction path after document shredding.
    pub fn bulk_load(mut entries: Vec<(Key, usize)>) -> Self {
        entries.sort_by(|a, b| cmp_key(&a.0, &b.0).then(a.1.cmp(&b.1)));
        let len = entries.len();
        if entries.is_empty() {
            return BPlusTree::new();
        }
        let mut nodes: Vec<Node> = Vec::new();
        // Build leaves.
        let mut leaf_ids: Vec<usize> = Vec::new();
        let mut first_keys: Vec<Key> = Vec::new();
        let per_leaf = ORDER.max(2);
        for chunk in entries.chunks(per_leaf) {
            let id = nodes.len();
            first_keys.push(chunk[0].0.clone());
            nodes.push(Node::Leaf {
                keys: chunk.iter().map(|(k, _)| k.clone()).collect(),
                rows: chunk.iter().map(|(_, r)| *r).collect(),
                next: None,
            });
            leaf_ids.push(id);
        }
        // Link leaves.
        for w in 0..leaf_ids.len().saturating_sub(1) {
            let next_id = leaf_ids[w + 1];
            if let Node::Leaf { next, .. } = &mut nodes[leaf_ids[w]] {
                *next = Some(next_id);
            }
        }
        // Build internal levels bottom-up.
        let mut level_ids = leaf_ids;
        let mut level_first_keys = first_keys;
        let mut height = 1;
        while level_ids.len() > 1 {
            let mut parent_ids = Vec::new();
            let mut parent_first_keys = Vec::new();
            for (chunk_ids, chunk_keys) in
                level_ids.chunks(ORDER).zip(level_first_keys.chunks(ORDER))
            {
                let id = nodes.len();
                parent_first_keys.push(chunk_keys[0].clone());
                nodes.push(Node::Internal {
                    separators: chunk_keys[1..].to_vec(),
                    children: chunk_ids.to_vec(),
                });
                parent_ids.push(id);
            }
            level_ids = parent_ids;
            level_first_keys = parent_first_keys;
            height += 1;
        }
        BPlusTree {
            root: level_ids[0],
            nodes,
            len,
            height,
        }
    }

    /// Insert an entry.
    pub fn insert(&mut self, key: Key, row: usize) {
        if let Some((sep, new_node)) = self.insert_rec(self.root, &key, row) {
            // Root split: create a new root.
            let old_root = self.root;
            let new_root = self.nodes.len();
            self.nodes.push(Node::Internal {
                separators: vec![sep],
                children: vec![old_root, new_node],
            });
            self.root = new_root;
            self.height += 1;
        }
        self.len += 1;
    }

    fn insert_rec(&mut self, node_id: usize, key: &Key, row: usize) -> Option<(Key, usize)> {
        if matches!(self.nodes[node_id], Node::Leaf { .. }) {
            let overflow = match &mut self.nodes[node_id] {
                Node::Leaf { keys, rows, .. } => {
                    let pos = keys.partition_point(|k| cmp_key(k, key) != Ordering::Greater);
                    keys.insert(pos, key.clone());
                    rows.insert(pos, row);
                    keys.len() > ORDER
                }
                Node::Internal { .. } => unreachable!(),
            };
            return if overflow {
                Some(self.split_leaf(node_id))
            } else {
                None
            };
        }
        let (child_idx, child) = match &self.nodes[node_id] {
            Node::Internal {
                separators,
                children,
            } => {
                let idx = separators.partition_point(|s| cmp_key(s, key) != Ordering::Greater);
                (idx, children[idx])
            }
            Node::Leaf { .. } => unreachable!(),
        };
        if let Some((sep, new_node)) = self.insert_rec(child, key, row) {
            let overflow = match &mut self.nodes[node_id] {
                Node::Internal {
                    separators,
                    children,
                } => {
                    separators.insert(child_idx, sep);
                    children.insert(child_idx + 1, new_node);
                    separators.len() > ORDER
                }
                Node::Leaf { .. } => unreachable!(),
            };
            if overflow {
                return Some(self.split_internal(node_id));
            }
        }
        None
    }

    fn split_leaf(&mut self, node_id: usize) -> (Key, usize) {
        let new_id = self.nodes.len();
        let (sep, new_node) = match &mut self.nodes[node_id] {
            Node::Leaf { keys, rows, next } => {
                let mid = keys.len() / 2;
                let right_keys: Vec<Key> = keys.split_off(mid);
                let right_rows: Vec<usize> = rows.split_off(mid);
                let sep = right_keys[0].clone();
                let right = Node::Leaf {
                    keys: right_keys,
                    rows: right_rows,
                    next: *next,
                };
                *next = Some(new_id);
                (sep, right)
            }
            _ => unreachable!("split_leaf on internal node"),
        };
        self.nodes.push(new_node);
        (sep, new_id)
    }

    fn split_internal(&mut self, node_id: usize) -> (Key, usize) {
        let new_id = self.nodes.len();
        let (sep, new_node) = match &mut self.nodes[node_id] {
            Node::Internal {
                separators,
                children,
            } => {
                let mid = separators.len() / 2;
                let sep = separators[mid].clone();
                let right_seps: Vec<Key> = separators.split_off(mid + 1);
                separators.pop(); // drop the separator promoted upward
                let right_children: Vec<usize> = children.split_off(mid + 1);
                (
                    sep,
                    Node::Internal {
                        separators: right_seps,
                        children: right_children,
                    },
                )
            }
            _ => unreachable!("split_internal on leaf"),
        };
        self.nodes.push(new_node);
        (sep, new_id)
    }

    /// Row ids whose key starts with the given prefix (equality lookup).
    pub fn lookup_prefix(&self, prefix: &[Value]) -> Vec<usize> {
        self.range(Bound::Included(prefix), Bound::Included(prefix))
            .into_iter()
            .map(|(_, r)| r)
            .collect()
    }

    /// Range scan.  Bounds are key *prefixes*: a bound of length `m` is
    /// compared against the first `m` components of each stored key, so
    /// `Included([ELEM, "price"]) ..= Included([ELEM, "price"])` returns all
    /// entries of that name/kind partition regardless of the remaining key
    /// columns.
    pub fn range(&self, lower: Bound<&[Value]>, upper: Bound<&[Value]>) -> Vec<(Key, usize)> {
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        // Find the first leaf that may contain qualifying keys.
        let mut node_id = self.root;
        while let Node::Internal {
            separators,
            children,
        } = &self.nodes[node_id]
        {
            let idx = match lower {
                Bound::Unbounded => 0,
                Bound::Included(p) | Bound::Excluded(p) => {
                    separators.partition_point(|s| cmp_prefix(s, p) == Ordering::Less)
                }
            };
            node_id = children[idx.min(children.len() - 1)];
        }
        // Walk the leaf chain collecting qualifying entries.
        let mut current = Some(node_id);
        while let Some(id) = current {
            if let Node::Leaf { keys, rows, next } = &self.nodes[id] {
                for (k, &r) in keys.iter().zip(rows.iter()) {
                    if !lower_ok(k, lower) {
                        continue;
                    }
                    match upper {
                        Bound::Unbounded => {}
                        Bound::Included(p) => {
                            if cmp_prefix(k, p) == Ordering::Greater {
                                return out;
                            }
                        }
                        Bound::Excluded(p) => {
                            if cmp_prefix(k, p) != Ordering::Less {
                                return out;
                            }
                        }
                    }
                    out.push((k.clone(), r));
                }
                current = *next;
            } else {
                unreachable!("leaf chain reached an internal node");
            }
        }
        out
    }

    /// All entries in key order (full scan along the leaf chain).
    pub fn scan_all(&self) -> Vec<(Key, usize)> {
        self.range(Bound::Unbounded, Bound::Unbounded)
    }

    /// [`Self::range`] returning only the row ids (key order), skipping
    /// the per-entry key clone — the shape every executor range scan
    /// actually consumes.
    pub fn range_rids(&self, lower: Bound<&[Value]>, upper: Bound<&[Value]>) -> Vec<usize> {
        let mut out = Vec::new();
        if self.len == 0 {
            return out;
        }
        let mut node_id = self.root;
        while let Node::Internal {
            separators,
            children,
        } = &self.nodes[node_id]
        {
            let idx = match lower {
                Bound::Unbounded => 0,
                Bound::Included(p) | Bound::Excluded(p) => {
                    separators.partition_point(|s| cmp_prefix(s, p) == Ordering::Less)
                }
            };
            node_id = children[idx.min(children.len() - 1)];
        }
        let mut current = Some(node_id);
        while let Some(id) = current {
            if let Node::Leaf { keys, rows, next } = &self.nodes[id] {
                for (k, &r) in keys.iter().zip(rows.iter()) {
                    if !lower_ok(k, lower) {
                        continue;
                    }
                    match upper {
                        Bound::Unbounded => {}
                        Bound::Included(p) => {
                            if cmp_prefix(k, p) == Ordering::Greater {
                                return out;
                            }
                        }
                        Bound::Excluded(p) => {
                            if cmp_prefix(k, p) != Ordering::Less {
                                return out;
                            }
                        }
                    }
                    out.push(r);
                }
                current = *next;
            } else {
                unreachable!("leaf chain reached an internal node");
            }
        }
        out
    }
}

fn lower_ok(key: &Key, lower: Bound<&[Value]>) -> bool {
    match lower {
        Bound::Unbounded => true,
        Bound::Included(p) => cmp_prefix(key, p) != Ordering::Less,
        Bound::Excluded(p) => cmp_prefix(key, p) == Ordering::Greater,
    }
}

/// Compare two full keys lexicographically.
pub fn cmp_key(a: &[Value], b: &[Value]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let o = x.cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    a.len().cmp(&b.len())
}

/// Compare a full key against a (possibly shorter) prefix: only the first
/// `prefix.len()` components participate.
pub fn cmp_prefix(key: &[Value], prefix: &[Value]) -> Ordering {
    for (x, y) in key.iter().zip(prefix.iter()) {
        let o = x.cmp(y);
        if o != Ordering::Equal {
            return o;
        }
    }
    if key.len() >= prefix.len() {
        Ordering::Equal
    } else {
        Ordering::Less
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(vals: &[i64]) -> Key {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn insert_and_point_lookup() {
        let mut t = BPlusTree::new();
        for i in 0..500 {
            t.insert(key(&[i % 10, i]), i as usize);
        }
        assert_eq!(t.len(), 500);
        let hits = t.lookup_prefix(&key(&[3]));
        assert_eq!(hits.len(), 50);
        let exact = t.lookup_prefix(&key(&[3, 13]));
        assert_eq!(exact, vec![13]);
    }

    #[test]
    fn range_scan_with_prefix_bounds() {
        let mut t = BPlusTree::new();
        for i in 0..200i64 {
            t.insert(key(&[i]), i as usize);
        }
        let lo = key(&[50]);
        let hi = key(&[60]);
        let r = t.range(Bound::Excluded(&lo), Bound::Included(&hi));
        let rows: Vec<usize> = r.into_iter().map(|(_, r)| r).collect();
        assert_eq!(rows, (51..=60).collect::<Vec<usize>>());
    }

    #[test]
    fn range_rids_matches_range() {
        let mut t = BPlusTree::new();
        for i in 0..300i64 {
            t.insert(key(&[i % 9, i]), i as usize);
        }
        let lo = key(&[2]);
        let hi = key(&[5]);
        for (l, u) in [
            (
                Bound::Included(lo.as_slice()),
                Bound::Included(hi.as_slice()),
            ),
            (
                Bound::Excluded(lo.as_slice()),
                Bound::Excluded(hi.as_slice()),
            ),
            (Bound::Unbounded, Bound::Included(hi.as_slice())),
            (Bound::Included(lo.as_slice()), Bound::Unbounded),
            (Bound::Unbounded, Bound::Unbounded),
        ] {
            let with_keys: Vec<usize> = t.range(l, u).into_iter().map(|(_, r)| r).collect();
            assert_eq!(t.range_rids(l, u), with_keys);
        }
        assert!(BPlusTree::new()
            .range_rids(Bound::Unbounded, Bound::Unbounded)
            .is_empty());
    }

    #[test]
    fn bulk_load_equals_insert() {
        let entries: Vec<(Key, usize)> =
            (0..1000).map(|i| (key(&[i % 7, i]), i as usize)).collect();
        let bulk = BPlusTree::bulk_load(entries.clone());
        let mut inc = BPlusTree::new();
        for (k, r) in entries {
            inc.insert(k, r);
        }
        assert_eq!(bulk.len(), inc.len());
        assert_eq!(bulk.scan_all(), inc.scan_all());
        assert!(bulk.height() >= 2);
    }

    #[test]
    fn scan_all_is_sorted() {
        let mut t = BPlusTree::new();
        // Insert in reverse order.
        for i in (0..300i64).rev() {
            t.insert(key(&[i]), i as usize);
        }
        let all = t.scan_all();
        assert_eq!(all.len(), 300);
        for w in all.windows(2) {
            assert!(cmp_key(&w[0].0, &w[1].0) != Ordering::Greater);
        }
    }

    #[test]
    fn duplicate_keys_keep_all_postings() {
        let mut t = BPlusTree::new();
        for i in 0..100 {
            t.insert(key(&[7]), i);
        }
        assert_eq!(t.lookup_prefix(&key(&[7])).len(), 100);
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert!(t.scan_all().is_empty());
        assert!(t.lookup_prefix(&key(&[1])).is_empty());
        let empty_bulk = BPlusTree::bulk_load(vec![]);
        assert!(empty_bulk.is_empty());
    }

    #[test]
    fn mixed_type_keys() {
        let mut t = BPlusTree::new();
        t.insert(vec![Value::str("price"), Value::Int(1)], 1);
        t.insert(vec![Value::str("price"), Value::Int(2)], 2);
        t.insert(vec![Value::str("item"), Value::Int(3)], 3);
        let hits = t.lookup_prefix(&[Value::str("price")]);
        assert_eq!(hits.len(), 2);
        let all = t.scan_all();
        assert_eq!(all[0].1, 3, "item sorts before price");
    }

    #[test]
    fn prefix_comparison_rules() {
        let k = key(&[5, 9]);
        assert_eq!(cmp_prefix(&k, &key(&[5])), Ordering::Equal);
        assert_eq!(cmp_prefix(&k, &key(&[6])), Ordering::Less);
        assert_eq!(cmp_prefix(&k, &key(&[5, 9, 1])), Ordering::Less);
        assert_eq!(cmp_key(&key(&[5]), &key(&[5, 1])), Ordering::Less);
    }

    #[test]
    fn unbounded_lower_with_upper() {
        let t = BPlusTree::bulk_load((0..50i64).map(|i| (key(&[i]), i as usize)).collect());
        let hi = key(&[4]);
        let r = t.range(Bound::Unbounded, Bound::Excluded(&hi));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn large_tree_height_grows_logarithmically() {
        let t = BPlusTree::bulk_load((0..100_000i64).map(|i| (key(&[i]), i as usize)).collect());
        assert_eq!(t.len(), 100_000);
        assert!(t.height() <= 4, "height {} too large", t.height());
        // Spot-check a middle range.
        let lo = key(&[42_000]);
        let hi = key(&[42_010]);
        let r = t.range(Bound::Included(&lo), Bound::Included(&hi));
        assert_eq!(r.len(), 11);
    }
}
