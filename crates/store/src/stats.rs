//! Table and column statistics.
//!
//! The paper's point in Section IV-A is that *ordinary* RDBMS statistics —
//! per-column cardinalities and value distributions gathered over the `doc`
//! encoding — are all the optimizer needs to reorder XPath steps and reverse
//! axes.  This module provides exactly that: row counts, per-column
//! distinct/null counts, min/max, most-common values (tag names are heavily
//! skewed) and an equi-width histogram for numeric columns.

use crate::kernel::agg_i64_masked;
use crate::morsel::ExecConfig;
use crate::table::Table;
use crate::value::Value;
use std::collections::HashMap;
use std::ops::Bound;

/// Number of most-common values tracked per column.
const MCV_LIMIT: usize = 32;
/// Number of buckets in numeric histograms.
const HISTOGRAM_BUCKETS: usize = 32;

/// Statistics for one column.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Total number of rows (including NULLs).
    pub rows: usize,
    /// Number of NULL values.
    pub nulls: usize,
    /// Number of distinct non-NULL values.
    pub distinct: usize,
    /// Minimum non-NULL value.
    pub min: Option<Value>,
    /// Maximum non-NULL value.
    pub max: Option<Value>,
    /// Most common values with their frequencies.
    pub mcv: Vec<(Value, usize)>,
    /// Equi-width histogram over the numeric image of the column
    /// (`bucket[i]` counts values in the i-th slice of `[min, max]`).
    pub histogram: Vec<usize>,
    /// Mean of the numeric image of the column (`None` for non-numeric
    /// columns).  Standard RUNSTATS output; not consumed by the current
    /// cost model (containment selectivity uses the tiling estimate
    /// instead), but e.g. a mean-subtree-extent refinement would read the
    /// `size` column's mean from here.
    pub mean: Option<f64>,
}

impl ColumnStats {
    /// Estimated selectivity of `column = value`.
    pub fn eq_selectivity(&self, value: &Value) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        if let Some((_, freq)) = self.mcv.iter().find(|(v, _)| v == value) {
            return *freq as f64 / self.rows as f64;
        }
        // Value not among the MCVs: assume the remaining rows are spread
        // uniformly over the remaining distinct values.
        let mcv_rows: usize = self.mcv.iter().map(|(_, f)| f).sum();
        let rest_rows = self.rows.saturating_sub(mcv_rows + self.nulls);
        let rest_distinct = self.distinct.saturating_sub(self.mcv.len()).max(1);
        (rest_rows as f64 / rest_distinct as f64 / self.rows as f64).clamp(0.0, 1.0)
    }

    /// Estimated selectivity of a range predicate over the column.
    pub fn range_selectivity(&self, lower: Bound<&Value>, upper: Bound<&Value>) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        let (min, max) = match (self.min.as_ref(), self.max.as_ref()) {
            (Some(a), Some(b)) => (a, b),
            _ => return 0.0,
        };
        let (min_f, max_f) = match (min.as_f64(), max.as_f64()) {
            (Some(a), Some(b)) if b > a => (a, b),
            // Non-numeric or single-valued column: fall back to a constant.
            _ => return default_range_selectivity(),
        };
        let lo = match lower {
            Bound::Unbounded => min_f,
            Bound::Included(v) | Bound::Excluded(v) => v.as_f64().unwrap_or(min_f),
        };
        let hi = match upper {
            Bound::Unbounded => max_f,
            Bound::Included(v) | Bound::Excluded(v) => v.as_f64().unwrap_or(max_f),
        };
        if hi <= lo {
            return 1.0 / self.rows as f64;
        }
        if self.histogram.is_empty() {
            return (((hi.min(max_f) - lo.max(min_f)) / (max_f - min_f)).clamp(0.0, 1.0))
                .max(1.0 / self.rows as f64);
        }
        // Histogram-based estimate.
        let width = (max_f - min_f) / self.histogram.len() as f64;
        let mut covered = 0.0;
        for (i, &count) in self.histogram.iter().enumerate() {
            let b_lo = min_f + i as f64 * width;
            let b_hi = b_lo + width;
            let overlap = (hi.min(b_hi) - lo.max(b_lo)).max(0.0) / width;
            covered += overlap.min(1.0) * count as f64;
        }
        (covered / self.rows as f64).clamp(1.0 / self.rows as f64, 1.0)
    }
}

/// Default selectivity for range predicates we cannot estimate.
pub fn default_range_selectivity() -> f64 {
    1.0 / 3.0
}

/// Statistics for a whole table.
#[derive(Debug, Clone)]
pub struct TableStats {
    /// Row count.
    pub rows: usize,
    /// Per-column statistics.
    pub columns: HashMap<String, ColumnStats>,
}

impl TableStats {
    /// Gather statistics over a table (a full "RUNSTATS" pass).
    ///
    /// Columns whose typed image is a (possibly NULL-masked) `i64` vector
    /// take a kernelized path: NULL/min/max/mean come from one masked
    /// column reduction ([`agg_i64_masked`], exact `i128` sum) and the
    /// frequency map runs over raw `i64` keys.  Both paths produce the
    /// same `ColumnStats`; `XQJG_TYPED_KERNELS=0` forces the row path.
    pub fn collect(table: &Table) -> Self {
        let rows = table.len();
        let typed_kernels = ExecConfig::from_env().typed_kernels;
        let mut columns = HashMap::new();
        for (ci, name) in table.schema().columns().iter().enumerate() {
            let stats = match table.typed().int_col_nullable(ci) {
                Some((vals, validity)) if typed_kernels => collect_int_column(rows, vals, validity),
                _ => collect_column_rows(table, ci, rows),
            };
            columns.insert(name.clone(), stats);
        }
        TableStats { rows, columns }
    }

    /// Statistics for a column, if collected.
    pub fn column(&self, name: &str) -> Option<&ColumnStats> {
        self.columns.get(name)
    }
}

/// Row-at-a-time statistics pass (the oracle path, and the only path for
/// columns without an `i64` image).
fn collect_column_rows(table: &Table, ci: usize, rows: usize) -> ColumnStats {
    let mut freq: HashMap<Value, usize> = HashMap::new();
    let mut nulls = 0usize;
    let mut min: Option<Value> = None;
    let mut max: Option<Value> = None;
    let mut numeric_sum = 0.0f64;
    let mut numeric_count = 0usize;
    for row in table.rows() {
        let v = &row[ci];
        if v.is_null() {
            nulls += 1;
            continue;
        }
        if let Some(f) = v.as_f64() {
            numeric_sum += f;
            numeric_count += 1;
        }
        *freq.entry(v.clone()).or_insert(0) += 1;
        if min.as_ref().is_none_or(|m| v < m) {
            min = Some(v.clone());
        }
        if max.as_ref().is_none_or(|m| v > m) {
            max = Some(v.clone());
        }
    }
    let distinct = freq.len();
    let mut mcv: Vec<(Value, usize)> = freq.iter().map(|(v, f)| (v.clone(), *f)).collect();
    mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    mcv.truncate(MCV_LIMIT);
    let histogram = build_histogram(table, ci, min.as_ref(), max.as_ref());
    let mean = (numeric_count > 0).then(|| numeric_sum / numeric_count as f64);
    ColumnStats {
        rows,
        nulls,
        distinct,
        min,
        max,
        mcv,
        histogram,
        mean,
    }
}

/// Kernelized statistics pass over an `i64` image: one masked reduction
/// for COUNT/SUM/MIN/MAX (mean = exact `i128` sum / count), then a raw
/// `i64` frequency map for distinct/MCV and an equi-width histogram.
fn collect_int_column(
    rows: usize,
    vals: &[i64],
    validity: Option<&crate::mask::BitMask>,
) -> ColumnStats {
    let agg = agg_i64_masked(vals, validity);
    let nulls = rows - agg.count;
    let min = agg.min.map(Value::Int);
    let max = agg.max.map(Value::Int);
    let mean = (agg.count > 0).then(|| agg.sum as f64 / agg.count as f64);
    let mut freq: HashMap<i64, usize> = HashMap::new();
    for (i, &v) in vals.iter().enumerate() {
        if validity.is_none_or(|m| m.get(i)) {
            *freq.entry(v).or_insert(0) += 1;
        }
    }
    let distinct = freq.len();
    let mut mcv: Vec<(Value, usize)> = freq.iter().map(|(&v, &f)| (Value::Int(v), f)).collect();
    mcv.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    mcv.truncate(MCV_LIMIT);
    let histogram = match (agg.min, agg.max) {
        (Some(lo), Some(hi)) if hi > lo => {
            let (min_f, max_f) = (lo as f64, hi as f64);
            let mut buckets = vec![0usize; HISTOGRAM_BUCKETS];
            let width = (max_f - min_f) / HISTOGRAM_BUCKETS as f64;
            for (i, &v) in vals.iter().enumerate() {
                if validity.is_none_or(|m| m.get(i)) {
                    let idx = (((v as f64 - min_f) / width) as usize).min(HISTOGRAM_BUCKETS - 1);
                    buckets[idx] += 1;
                }
            }
            buckets
        }
        _ => Vec::new(),
    };
    ColumnStats {
        rows,
        nulls,
        distinct,
        min,
        max,
        mcv,
        histogram,
        mean,
    }
}

fn build_histogram(
    table: &Table,
    column: usize,
    min: Option<&Value>,
    max: Option<&Value>,
) -> Vec<usize> {
    let (min_f, max_f) = match (min.and_then(Value::as_f64), max.and_then(Value::as_f64)) {
        (Some(a), Some(b)) if b > a => (a, b),
        _ => return Vec::new(),
    };
    let mut buckets = vec![0usize; HISTOGRAM_BUCKETS];
    let width = (max_f - min_f) / HISTOGRAM_BUCKETS as f64;
    for row in table.rows() {
        if let Some(f) = row[column].as_f64() {
            let mut idx = ((f - min_f) / width) as usize;
            if idx >= HISTOGRAM_BUCKETS {
                idx = HISTOGRAM_BUCKETS - 1;
            }
            buckets[idx] += 1;
        }
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn skewed_table() -> Table {
        // A name-like column: "item" appears 80 times, 20 rare names once
        // each; plus a numeric column 0..99.
        let mut t = Table::new(Schema::new(["name", "price"]));
        for i in 0..100i64 {
            let name = if i < 80 {
                "item".to_string()
            } else {
                format!("rare{i}")
            };
            t.push(vec![Value::Str(name), Value::Int(i)]);
        }
        t
    }

    #[test]
    fn collects_basic_counts() {
        let stats = TableStats::collect(&skewed_table());
        assert_eq!(stats.rows, 100);
        let name = stats.column("name").unwrap();
        assert_eq!(name.distinct, 21);
        assert_eq!(name.nulls, 0);
        let price = stats.column("price").unwrap();
        assert_eq!(price.min, Some(Value::Int(0)));
        assert_eq!(price.max, Some(Value::Int(99)));
        assert!((price.mean.unwrap() - 49.5).abs() < 1e-9);
        assert_eq!(stats.column("name").unwrap().mean, None);
    }

    #[test]
    fn eq_selectivity_tracks_skew() {
        let stats = TableStats::collect(&skewed_table());
        let name = stats.column("name").unwrap();
        let common = name.eq_selectivity(&Value::str("item"));
        let rare = name.eq_selectivity(&Value::str("rare85"));
        assert!((common - 0.8).abs() < 1e-9);
        assert!(rare < 0.05);
        assert!(common > rare * 10.0);
    }

    #[test]
    fn eq_selectivity_for_unknown_value_is_small() {
        let stats = TableStats::collect(&skewed_table());
        let name = stats.column("name").unwrap();
        let unknown = name.eq_selectivity(&Value::str("nonexistent"));
        assert!(unknown <= 0.05);
    }

    #[test]
    fn range_selectivity_tracks_fraction() {
        let stats = TableStats::collect(&skewed_table());
        let price = stats.column("price").unwrap();
        let half = price.range_selectivity(Bound::Included(&Value::Int(50)), Bound::Unbounded);
        assert!(half > 0.35 && half < 0.65, "got {half}");
        let all = price.range_selectivity(Bound::Unbounded, Bound::Unbounded);
        assert!(all > 0.9);
        let none = price.range_selectivity(
            Bound::Included(&Value::Int(95)),
            Bound::Included(&Value::Int(99)),
        );
        assert!(none < 0.2);
    }

    #[test]
    fn range_selectivity_on_string_column_uses_default() {
        let stats = TableStats::collect(&skewed_table());
        let name = stats.column("name").unwrap();
        let s = name.range_selectivity(Bound::Included(&Value::str("a")), Bound::Unbounded);
        assert!((s - default_range_selectivity()).abs() < 1e-9);
    }

    #[test]
    fn nulls_are_counted() {
        let mut t = Table::new(Schema::new(["v"]));
        t.push(vec![Value::Null]);
        t.push(vec![Value::Int(1)]);
        let stats = TableStats::collect(&t);
        let c = stats.column("v").unwrap();
        assert_eq!(c.nulls, 1);
        assert_eq!(c.distinct, 1);
    }

    #[test]
    fn kernelized_int_stats_match_row_path() {
        // A NULL-bearing int column takes the masked-reduction path; every
        // ColumnStats field must agree with the row-at-a-time oracle.
        let mut t = Table::new(Schema::new(["v"]));
        for i in 0..500i64 {
            let v = if i % 7 == 3 {
                Value::Null
            } else {
                Value::Int(i % 40 - 10)
            };
            t.push(vec![v]);
        }
        let kernel = TableStats::collect(&t);
        let k = kernel.column("v").unwrap();
        let r = collect_column_rows(&t, 0, t.len());
        assert_eq!(k.rows, r.rows);
        assert_eq!(k.nulls, r.nulls);
        assert_eq!(k.distinct, r.distinct);
        assert_eq!(k.min, r.min);
        assert_eq!(k.max, r.max);
        assert_eq!(k.mcv, r.mcv);
        assert_eq!(k.histogram, r.histogram);
        assert!((k.mean.unwrap() - r.mean.unwrap()).abs() < 1e-9);
    }

    #[test]
    fn empty_table_stats() {
        let t = Table::new(Schema::new(["v"]));
        let stats = TableStats::collect(&t);
        let c = stats.column("v").unwrap();
        assert_eq!(c.eq_selectivity(&Value::Int(1)), 0.0);
        assert_eq!(c.range_selectivity(Bound::Unbounded, Bound::Unbounded), 0.0);
    }
}
