//! Table schemas: ordered, named columns.

use std::fmt;

/// An ordered list of column names.
///
/// Column names are plain strings (`pre`, `size`, `iter`, `item`, …); the
/// loop-lifting compiler freely invents derived names (`pre1`, `item2`,
/// `pos_0`, …) so the schema imposes no naming discipline beyond uniqueness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Build a schema from column names.
    ///
    /// # Panics
    /// Panics if a column name appears twice — duplicate names always
    /// indicate a compiler bug and would silently corrupt projections.
    pub fn new<S: Into<String>>(columns: impl IntoIterator<Item = S>) -> Self {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        for (i, c) in columns.iter().enumerate() {
            assert!(
                !columns[..i].contains(c),
                "duplicate column name {c:?} in schema {columns:?}"
            );
        }
        Schema { columns }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` for the empty schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Position of a column by name, panicking with a helpful message when
    /// the column does not exist (used in contexts where absence is a bug).
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("column {name:?} not in schema {:?}", self.columns))
    }

    /// Does the schema contain the column?
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Name of the column at `idx`.
    pub fn column(&self, idx: usize) -> &str {
        &self.columns[idx]
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({})", self.columns.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let s = Schema::new(["iter", "pos", "item"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("pos"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.contains("item"));
        assert_eq!(s.column(0), "iter");
        assert_eq!(s.to_string(), "(iter, pos, item)");
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        let _ = Schema::new(["a", "b", "a"]);
    }

    #[test]
    #[should_panic(expected = "not in schema")]
    fn expect_index_panics_on_missing() {
        Schema::new(["a"]).expect_index("z");
    }
}
